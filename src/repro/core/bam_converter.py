"""The BAM format converter (§III-B, Fig. 3).

BAM records carry no delimiter and sit inside BGZF blocks, so an even
byte split leaves every partition unparsable: BAM conversion cannot be
parallelized without preprocessing.  The converter therefore runs two
phases:

1. **Sequential preprocessing** — stream the BAM once to plan the BAMX
   layout, stream it again to write the fixed-record BAMX file and its
   BAIX index (sorted starting positions -> record indices).
2. **Parallel conversion** — the BAMX supports O(1) random access, so
   partitioning degenerates to handing each rank an equal count of
   records; from there the flow matches the SAM converter.

The BAIX also enables *partial conversion*: a chromosome region is
binary-searched to a contiguous BAIX subrange, which is split evenly
across ranks (§III-B, Fig. 4).

For the Table I baseline, :func:`convert_bam_direct` converts straight
from BAM without preprocessing (necessarily one rank).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

from ..errors import ConversionError
from ..formats import batch as batch_codec
from ..formats.bam import BamReader
from ..formats.baix import BaixIndex, default_index_path
from ..formats.bamx import BamxLayout, BamxWriter
from ..formats.batch import DEFAULT_BATCH_SIZE, PIPELINES
from ..formats.store import open_record_store
from ..formats.header import SamHeader
from ..formats.tags import encode_tags
from ..runtime.autotune import AUTO, AutoTuner
from ..runtime.buffers import BufferedTextWriter
from ..runtime.metrics import RankMetrics
from ..runtime.partition import partition_records
from ..runtime.tracing import get_tracer
from .base import ConversionResult, bind_target, emit_records, \
    ensure_tuner, execute_rank_tasks, finish_rank_metrics, \
    make_output_path, merge_shard_outputs, record_tuning, \
    resolve_tuning, validate_knob
from .filters import ACCEPT_ALL, RecordFilter
from .region import GenomicRegion
from .targets import get_target


def preprocess_bam(bam_path: str | os.PathLike[str],
                   bamx_path: str | os.PathLike[str],
                   baix_path: str | os.PathLike[str] | None = None,
                   compress: bool = False, level: int = 6,
                   batch_size: int = DEFAULT_BATCH_SIZE,
                   store_format: str = "bamx",
                   ) -> RankMetrics:
    """Sequential preprocessing: BAM -> BAMX/BAMZ/BAMC + BAIX.

    Two streaming passes over the BAM (layout planning, then writing);
    the BGZF layer forbids anything but sequential decoding, which is
    why this phase cannot be parallelized (§III-B).  With
    ``compress=True`` the record store is written as BGZF-compressed
    BAMZ (the paper's future-work extension) instead of raw BAMX; with
    ``store_format="bamc"`` it is written as the slab-columnar BAMC,
    which the conversion phase reads through the vectorized kernels.
    Returns the phase metrics.
    """
    from ..formats.store import STORE_FORMATS
    if store_format not in STORE_FORMATS:
        raise ConversionError(
            f"unknown store format {store_format!r}; choose one of "
            f"{STORE_FORMATS}")
    if store_format == "bamc" and compress:
        raise ConversionError(
            "BAMC does not support BGZF compression; use "
            "store_format='bamx' with compress=True for BAMZ")
    t0 = time.perf_counter()
    metrics = RankMetrics()
    bam_path = os.fspath(bam_path)
    bamx_path = os.fspath(bamx_path)
    if baix_path is None:
        baix_path = default_index_path(bamx_path)
    tracer = get_tracer()
    with tracer.span("preprocess", "bam",
                     args={"input": os.path.basename(bam_path),
                           "compress": compress,
                           "store_format": store_format}):
        # Pass 1: plan the fixed-field capacities.
        name_cap = cigar_cap = seq_cap = tag_cap = 0
        count = 0
        with tracer.span("plan", "bam"), BamReader(bam_path) as reader:
            header = reader.header
            for record in reader:
                name_cap = max(name_cap, len(record.qname))
                cigar_cap = max(cigar_cap, len(record.cigar))
                if record.seq != "*":
                    seq_cap = max(seq_cap, len(record.seq))
                tag_cap = max(tag_cap, len(encode_tags(record.tags)))
                count += 1
        layout = BamxLayout(name_cap, cigar_cap, seq_cap, tag_cap)
        # Pass 2: write aligned records and collect index entries.
        if store_format == "bamc":
            from ..formats.bamc import BamcWriter
            writer_ctx = BamcWriter(bamx_path, header, layout,
                                    slab_records=batch_size)
        elif compress:
            from ..formats.bamz import BamzWriter
            writer_ctx = BamzWriter(bamx_path, header, layout, level=level)
        else:
            writer_ctx = BamxWriter(bamx_path, header, layout)
        index_entries = []
        with tracer.span("write", "bam", args={"records": count}), \
                BamReader(bam_path) as reader, writer_ctx as writer:
            if hasattr(writer, "write_batch"):
                # BAMX: batch-encode into one preallocated buffer per
                # slab (BAMZ needs per-record virtual offsets and keeps
                # the per-record path).
                pending: list = []
                with tracer.span("batch.encode", "bam",
                                 args={"batch_size": batch_size}):
                    for record in reader:
                        pending.append(record)
                        if len(pending) >= batch_size:
                            _flush_preproc_batch(writer, pending,
                                                 index_entries)
                            pending = []
                    if pending:
                        _flush_preproc_batch(writer, pending,
                                             index_entries)
            else:
                for record in reader:
                    index = writer.write(record)
                    if record.rname != "*" and record.pos >= 0:
                        index_entries.append((index, record))
        with tracer.span("index", "bam",
                         args={"entries": len(index_entries)}):
            BaixIndex.build(index_entries, header).save(baix_path)
            from ..formats.baix2 import BaixOverlapIndex
            from ..formats.baix2 import default_index_path as baix2_path
            BaixOverlapIndex.build(index_entries, header).save(
                baix2_path(bamx_path))
    metrics.records = count
    metrics.bytes_read = 2 * os.path.getsize(bam_path)
    metrics.bytes_written = (os.path.getsize(bamx_path)
                             + os.path.getsize(baix_path))
    return finish_rank_metrics(metrics, t0)


def _flush_preproc_batch(writer: BamxWriter, records: list,
                         index_entries: list) -> None:
    """Write one preprocessing batch and collect its index entries."""
    first = writer.write_batch(records)
    for j, record in enumerate(records):
        if record.rname != "*" and record.pos >= 0:
            index_entries.append((first + j, record))


@dataclass(frozen=True, slots=True)
class PreprocArtifacts:
    """Preprocessing products handed to a converter from outside.

    The service layer's artifact cache (and any future distributed
    store) builds BAMX/BAIX pairs out-of-band; converters accept this
    handle instead of insisting on running preprocessing themselves.
    """

    store_path: str
    baix_path: str

    @classmethod
    def for_store(cls, store_path: str | os.PathLike[str],
                  baix_path: str | os.PathLike[str] | None = None,
                  ) -> "PreprocArtifacts":
        """Wrap an existing store, defaulting the index path."""
        store_path = os.fspath(store_path)
        if baix_path is None:
            baix_path = default_index_path(store_path)
        return cls(store_path, os.fspath(baix_path))

    def validate(self) -> "PreprocArtifacts":
        """Check both files exist; returns self for chaining."""
        for path in (self.store_path, self.baix_path):
            if not os.path.isfile(path):
                raise ConversionError(
                    f"preprocessing artifact missing: {path}")
        return self


@dataclass(frozen=True, slots=True)
class BamxRangeSpec:
    """One rank's contiguous BAMX record range (full conversion)."""

    bamx_path: str
    start: int
    stop: int
    target: str
    out_path: str
    record_filter: RecordFilter = ACCEPT_ALL
    batch_size: int = DEFAULT_BATCH_SIZE
    pipeline: str = "batch"
    write_header: bool = True

    def cost_hint(self) -> float:
        """Relative shard size: BAMX records to convert."""
        return float(self.stop - self.start)

    def split(self, n: int) -> "list[BamxRangeSpec]":
        """Over-decompose this rank's record range into <= *n* shards.

        BAMX records are fixed-size, so the split is an exact count
        split; shards write ``.shardNN`` files (header on shard 0 only)
        that :meth:`merge_shards` concatenates.  Binary targets
        decline.
        """
        count = self.stop - self.start
        if n <= 1 or count <= 1 \
                or get_target(self.target).mode == "binary":
            return [self]
        parts = [(s, e) for s, e in partition_records(count, n) if e > s]
        if len(parts) <= 1:
            return [self]
        return [replace(self,
                        start=self.start + s,
                        stop=self.start + e,
                        out_path=f"{self.out_path}.shard{i:02d}",
                        write_header=(i == 0))
                for i, (s, e) in enumerate(parts)]

    def merge_shards(self, shard_specs: "list[BamxRangeSpec]",
                     shard_results: list[RankMetrics]) -> RankMetrics:
        """Ordered reducer: concatenate shard files into ``out_path``."""
        return merge_shard_outputs(self.out_path, shard_specs,
                                   shard_results)


@dataclass(frozen=True, slots=True)
class BamxPickSpec:
    """One rank's explicit record indices (partial conversion)."""

    bamx_path: str
    indices: tuple[int, ...]
    target: str
    out_path: str
    record_filter: RecordFilter = ACCEPT_ALL
    batch_size: int = DEFAULT_BATCH_SIZE
    pipeline: str = "batch"
    write_header: bool = True

    def cost_hint(self) -> float:
        """Relative shard size: records to random-access."""
        return float(len(self.indices))

    def split(self, n: int) -> "list[BamxPickSpec]":
        """Over-decompose this rank's index list into <= *n* shards."""
        count = len(self.indices)
        if n <= 1 or count <= 1 \
                or get_target(self.target).mode == "binary":
            return [self]
        parts = [(s, e) for s, e in partition_records(count, n) if e > s]
        if len(parts) <= 1:
            return [self]
        return [replace(self,
                        indices=self.indices[s:e],
                        out_path=f"{self.out_path}.shard{i:02d}",
                        write_header=(i == 0))
                for i, (s, e) in enumerate(parts)]

    def merge_shards(self, shard_specs: "list[BamxPickSpec]",
                     shard_results: list[RankMetrics]) -> RankMetrics:
        """Ordered reducer: concatenate shard files into ``out_path``."""
        return merge_shard_outputs(self.out_path, shard_specs,
                                   shard_results)


def _bamx_range_task(spec: BamxRangeSpec) -> RankMetrics:
    """Convert records ``[start, stop)`` of a BAMX/BAMZ store."""
    from ..formats.store import open_record_store
    t0 = time.perf_counter()
    metrics = RankMetrics()
    with open_record_store(spec.bamx_path) as reader:
        target = bind_target(get_target(spec.target), reader.header)
        metrics.bytes_read += (spec.stop - spec.start) \
            * reader.layout.record_size
        if spec.pipeline == "batch" and target.mode == "text" \
                and hasattr(reader, "read_column_batches"):
            slabs = reader.read_column_batches(spec.start, spec.stop)
            _write_target_columnar(slabs, reader, target, spec,
                                   metrics)
        elif spec.pipeline == "batch" and target.mode == "text" \
                and hasattr(reader, "read_raw_batches"):
            slabs = reader.read_raw_batches(spec.start, spec.stop,
                                            spec.batch_size)
            _write_target_batched(slabs, reader, target, spec,
                                  metrics)
        else:
            records = spec.record_filter.apply(
                reader.read_range(spec.start, spec.stop))
            _write_target(records, target, reader.header, spec.out_path,
                          metrics, spec.write_header)
    return finish_rank_metrics(metrics, t0)


def _bamx_pick_task(spec: BamxPickSpec) -> RankMetrics:
    """Convert an explicit set of record indices (random access)."""
    from ..formats.store import open_record_store
    t0 = time.perf_counter()
    metrics = RankMetrics()
    with open_record_store(spec.bamx_path) as reader:
        target = bind_target(get_target(spec.target), reader.header)
        metrics.bytes_read += len(spec.indices) * reader.layout.record_size
        if spec.pipeline == "batch" and target.mode == "text" \
                and hasattr(reader, "read_column_picks"):
            slabs = reader.read_column_picks(spec.indices)
            _write_target_columnar(slabs, reader, target, spec,
                                   metrics)
        elif spec.pipeline == "batch" and target.mode == "text" \
                and hasattr(reader, "read_raw"):
            slabs = ((memoryview(reader.read_raw(i)), 1)
                     for i in spec.indices)
            _write_target_batched(slabs, reader, target, spec,
                                  metrics)
        else:
            records = spec.record_filter.apply(
                reader[i] for i in spec.indices)
            _write_target(records, target, reader.header, spec.out_path,
                          metrics, spec.write_header)
    return finish_rank_metrics(metrics, t0)


def _write_target_batched(slabs, reader, target, spec,
                          metrics: RankMetrics) -> None:
    """Batched text conversion of raw record slabs.

    *slabs* yields ``(memoryview, count)`` pairs; records with a field
    fastpath never materialize, others decode record-at-a-time inside
    the same chunked writes.  Byte-identical to the per-record path.
    """
    tracer = get_tracer()
    layout, header = reader.layout, reader.header
    fast_emit = batch_codec.bamx_fastpath_for(target, layout, header)
    seen = emitted = batches = 0
    with tracer.span("write", "io",
                     args={"out": os.path.basename(spec.out_path)}), \
            tracer.span("batch.pipeline", "bam",
                        args={"batch_size": spec.batch_size,
                              "fastpath": fast_emit is not None,
                              "target": spec.target}) as span, \
            BufferedTextWriter(spec.out_path, metrics=metrics) as writer:
        head = target.file_header(header)
        if head and spec.write_header:
            writer.write_text(head)
        out_lines: list[str] = []
        for buf, count in slabs:
            if fast_emit is not None:
                s, e = batch_codec.convert_bamx_slab(
                    buf, count, layout, fast_emit, spec.record_filter,
                    out_lines)
            else:
                s, e = batch_codec.convert_bamx_slab_record(
                    buf, count, layout, header, target,
                    spec.record_filter, out_lines)
            seen += s
            emitted += e
            batches += 1
            if len(out_lines) >= spec.batch_size:
                writer.write_lines(out_lines)
                out_lines = []
        if out_lines:
            writer.write_lines(out_lines)
        if span is not None:
            span.args.update(batches=batches, records=seen)
    metrics.records += seen
    metrics.emitted += emitted


def _write_target_columnar(slabs, reader, target, spec,
                           metrics: RankMetrics) -> None:
    """Columnar text conversion of :class:`~..formats.bamc.ColumnSlab`s.

    Targets with a vectorized kernel emit whole slabs through numpy
    masks and blob-wide decodes; other targets (and any slab a kernel
    declines) fall back to record-at-a-time decoding of the same slab,
    counted in ``metrics.kernel_fallbacks``.  Byte-identical to the
    per-record path.
    """
    from ..formats import kernels as kernel_codec
    tracer = get_tracer()
    header = reader.header
    emit = kernel_codec.kernel_emitter_for(target, header)
    seen = emitted = batches = fallbacks = 0
    with tracer.span("write", "io",
                     args={"out": os.path.basename(spec.out_path)}), \
            tracer.span("batch.pipeline", "bam",
                        args={"batch_size": spec.batch_size,
                              "kernel": emit is not None,
                              "target": spec.target}) as span, \
            BufferedTextWriter(spec.out_path, metrics=metrics) as writer:
        head = target.file_header(header)
        if head and spec.write_header:
            writer.write_text(head)
        out_lines: list[str] = []
        for slab in slabs:
            if emit is not None:
                try:
                    lines, s = emit(slab, spec.record_filter)
                    out_lines.extend(lines)
                    e = len(lines)
                except kernel_codec.KernelFallback:
                    s, e = kernel_codec.convert_slab_record(
                        slab, header, target, spec.record_filter,
                        out_lines)
                    fallbacks += 1
            else:
                s, e = kernel_codec.convert_slab_record(
                    slab, header, target, spec.record_filter, out_lines)
                fallbacks += 1
            seen += s
            emitted += e
            batches += 1
            if len(out_lines) >= spec.batch_size:
                writer.write_lines(out_lines)
                out_lines = []
        if out_lines:
            writer.write_lines(out_lines)
        if span is not None:
            span.args.update(batches=batches, records=seen,
                             fallbacks=fallbacks)
    metrics.records += seen
    metrics.emitted += emitted
    metrics.kernel_fallbacks += fallbacks


def _write_target(records, target, header: SamHeader, out_path: str,
                  metrics: RankMetrics, write_header: bool = True) -> None:
    with get_tracer().span("write", "io",
                           args={"out": os.path.basename(out_path)}):
        _write_target_inner(records, target, header, out_path, metrics,
                            write_header)


def _write_target_inner(records, target, header: SamHeader, out_path: str,
                        metrics: RankMetrics,
                        write_header: bool = True) -> None:
    if target.mode == "binary":
        from ..formats.bam import BamWriter
        writer = BamWriter(out_path, header)
        emitted = 0
        for record in records:
            writer.write(record)
            emitted += 1
        writer.close()
        metrics.records += emitted
        metrics.emitted += emitted
        metrics.bytes_written += os.path.getsize(out_path)
    else:
        with BufferedTextWriter(out_path, metrics=metrics) as writer:
            head = target.file_header(header)
            if head and write_header:
                writer.write_text(head)
            emit_records(records, target, writer, metrics)


class BamConverter:
    """Two-phase parallel BAM -> * converter.

    Parameters
    ----------
    batch_size:
        Records per raw slab through the batched conversion phase.
    pipeline:
        ``"batch"`` (default) converts raw record slabs through the
        field-level fastpaths; ``"record"`` decodes every record.
        Outputs are byte-identical.
    shards_per_rank:
        Over-decomposition factor: each rank's record range is split
        into up to this many shards pulled dynamically by the shared
        worker pool.  ``1`` (default) is the paper-faithful static
        schedule; ``"auto"`` lets the cost model pick per job.
    store_format:
        Record-store format :meth:`preprocess` writes: ``"bamx"``
        (default; row-major fixed records, BAMZ when compressed) or
        ``"bamc"`` (slab-columnar, converted through the vectorized
        kernels).  Conversion itself dispatches on the store's magic,
        so either converter reads either store.
    tuner:
        :class:`~repro.runtime.autotune.AutoTuner` resolving ``"auto"``
        knobs and learning from every run; auto-created in-memory when
        omitted but a knob is ``"auto"``.
    """

    def __init__(self, batch_size: int | str = DEFAULT_BATCH_SIZE,
                 pipeline: str = "batch",
                 shards_per_rank: int | str = 1,
                 store_format: str = "bamx",
                 tuner: AutoTuner | None = None) -> None:
        from ..formats.store import STORE_FORMATS
        if pipeline not in PIPELINES:
            raise ConversionError(
                f"unknown pipeline {pipeline!r}; choose one of "
                f"{PIPELINES}")
        if store_format not in STORE_FORMATS:
            raise ConversionError(
                f"unknown store format {store_format!r}; choose one of "
                f"{STORE_FORMATS}")
        self.batch_size = validate_knob(batch_size, "batch_size")
        self.pipeline = pipeline
        self.shards_per_rank = validate_knob(shards_per_rank,
                                             "shards_per_rank")
        self.store_format = store_format
        self.tuner = ensure_tuner(tuner, self.shards_per_rank,
                                  self.batch_size)

    def _store_kind(self, store_path: str) -> str:
        """Cost-model store component, from the store's extension."""
        ext = os.path.splitext(store_path)[1].lstrip(".").lower()
        return ext or self.store_format

    def preprocess(self, bam_path: str | os.PathLike[str],
                   work_dir: str | os.PathLike[str],
                   compress: bool = False,
                   ) -> tuple[str, str, RankMetrics]:
        """Run sequential preprocessing into *work_dir*.

        Returns ``(store_path, baix_path, metrics)``; the store is BAMX,
        BGZF-compressed BAMZ when ``compress=True``, or columnar BAMC
        when the converter was built with ``store_format="bamc"``.
        """
        from ..formats.store import store_extension
        work_dir = os.fspath(work_dir)
        os.makedirs(work_dir, exist_ok=True)
        stem = os.path.splitext(os.path.basename(os.fspath(bam_path)))[0]
        bamx_path = os.path.join(
            work_dir, stem + store_extension(compress, self.store_format))
        baix_path = default_index_path(bamx_path)
        batch_size = DEFAULT_BATCH_SIZE if self.batch_size == AUTO \
            else self.batch_size
        metrics = preprocess_bam(bam_path, bamx_path, baix_path,
                                 compress=compress,
                                 batch_size=batch_size,
                                 store_format=self.store_format)
        return bamx_path, baix_path, metrics

    def ensure_preprocessed(self, bam_path: str | os.PathLike[str],
                            work_dir: str | os.PathLike[str],
                            compress: bool = False,
                            artifacts: PreprocArtifacts | None = None,
                            ) -> tuple[PreprocArtifacts,
                                       RankMetrics | None]:
        """Reuse externally supplied artifacts or preprocess now.

        When *artifacts* names an existing BAMX/BAIX pair (e.g. from
        the service layer's content-addressed cache) the sequential
        preprocessing phase is skipped entirely and the metrics slot is
        ``None``; otherwise :meth:`preprocess` runs into *work_dir*.
        """
        if artifacts is not None:
            return artifacts.validate(), None
        store_path, baix_path, metrics = self.preprocess(
            bam_path, work_dir, compress=compress)
        return PreprocArtifacts(store_path, baix_path), metrics

    def convert(self, bamx_path: str | os.PathLike[str], target: str,
                out_dir: str | os.PathLike[str], nprocs: int = 1,
                executor: str = "simulate",
                record_filter: RecordFilter | None = None,
                ) -> ConversionResult:
        """Parallel full conversion of a preprocessed BAMX/BAMZ store.

        *record_filter* restricts which records are emitted.
        """
        if nprocs < 1:
            raise ConversionError(f"nprocs {nprocs} must be >= 1")
        bamx_path = os.fspath(bamx_path)
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        t0 = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("convert", "bam",
                         args={"store": os.path.basename(bamx_path),
                               "target": target, "nprocs": nprocs}):
            with open_record_store(bamx_path) as reader:
                count = len(reader)
            target_plugin = get_target(target)
            stem = os.path.splitext(os.path.basename(bamx_path))[0]
            shards, batch_size, tuning = resolve_tuning(
                self.tuner, target=target,
                store_format=self._store_kind(bamx_path),
                pipeline=self.pipeline, total_units=count,
                nprocs=nprocs, shards=self.shards_per_rank,
                batch_size=self.batch_size,
                default_batch=DEFAULT_BATCH_SIZE)
            specs = [
                BamxRangeSpec(bamx_path, start, stop, target,
                              make_output_path(out_dir, stem, rank,
                                               target_plugin),
                              record_filter or ACCEPT_ALL,
                              batch_size, self.pipeline)
                for rank, (start, stop)
                in enumerate(partition_records(count, nprocs))
            ]
            rank_metrics = execute_rank_tasks(
                _bamx_range_task, specs, executor,
                shards_per_rank=shards, tuning=tuning)
            record_tuning(tracer, tuning)
        return ConversionResult(
            target=target,
            outputs=[s.out_path for s in specs],
            rank_metrics=rank_metrics,
            records=sum(m.records for m in rank_metrics),
            emitted=sum(m.emitted for m in rank_metrics),
            wall_seconds=time.perf_counter() - t0,
        )

    def convert_region(self, bamx_path: str | os.PathLike[str],
                       baix_path: str | os.PathLike[str] | None,
                       region: GenomicRegion | str, target: str,
                       out_dir: str | os.PathLike[str], nprocs: int = 1,
                       executor: str = "simulate", mode: str = "start",
                       record_filter: RecordFilter | None = None,
                       ) -> ConversionResult:
        """Partial conversion of one chromosome region.

        ``mode="start"`` (the paper's semantics) selects records whose
        *starting position* lies inside the region, via binary search
        over the v1 BAIX.  ``mode="overlap"`` selects records whose
        alignment span overlaps the region, via the v2 overlap index
        (the future-work extension); *baix_path* then names the
        ``.baix2`` file.  Either way the selected record indices are
        split evenly across ranks for random-access conversion
        (§III-B).  *record_filter* further restricts by flags/MAPQ.
        """
        if nprocs < 1:
            raise ConversionError(f"nprocs {nprocs} must be >= 1")
        bamx_path = os.fspath(bamx_path)
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        t0 = time.perf_counter()
        if mode not in ("start", "overlap"):
            raise ConversionError(
                f"unknown partial-conversion mode {mode!r}; choose "
                f"'start' or 'overlap'")
        tracer = get_tracer()
        with tracer.span("convert.region", "bam",
                         args={"store": os.path.basename(bamx_path),
                               "target": target, "nprocs": nprocs,
                               "mode": mode}):
            with open_record_store(bamx_path) as reader:
                header = reader.header
            if isinstance(region, str):
                region = GenomicRegion.parse(region, header)
            ref_id = header.ref_id(region.chrom)
            with tracer.span("locate", "bam", args={"mode": mode}):
                if mode == "start":
                    if baix_path is None:
                        baix_path = default_index_path(bamx_path)
                    index = BaixIndex.load(baix_path)
                    lo, hi = index.locate(ref_id, region.start, region.end)
                    indices = index.record_indices(lo, hi)
                else:
                    from ..formats.baix2 import BaixOverlapIndex
                    from ..formats.baix2 import default_index_path \
                        as baix2_path
                    if baix_path is None:
                        baix_path = baix2_path(bamx_path)
                    index2 = BaixOverlapIndex.load(baix_path)
                    indices = index2.locate_overlaps(ref_id, region.start,
                                                     region.end)
            target_plugin = get_target(target)
            stem = os.path.splitext(os.path.basename(bamx_path))[0]
            shards, batch_size, tuning = resolve_tuning(
                self.tuner, target=target,
                store_format=self._store_kind(bamx_path),
                pipeline=f"{self.pipeline}.pick",
                total_units=len(indices), nprocs=nprocs,
                shards=self.shards_per_rank,
                batch_size=self.batch_size,
                default_batch=DEFAULT_BATCH_SIZE)
            specs = [
                BamxPickSpec(bamx_path,
                             tuple(int(i) for i in indices[start:stop]),
                             target,
                             make_output_path(out_dir, f"{stem}.region",
                                              rank, target_plugin),
                             record_filter or ACCEPT_ALL,
                             batch_size, self.pipeline)
                for rank, (start, stop)
                in enumerate(partition_records(len(indices), nprocs))
            ]
            rank_metrics = execute_rank_tasks(
                _bamx_pick_task, specs, executor,
                shards_per_rank=shards, tuning=tuning)
            record_tuning(tracer, tuning)
        return ConversionResult(
            target=target,
            outputs=[s.out_path for s in specs],
            rank_metrics=rank_metrics,
            records=sum(m.records for m in rank_metrics),
            emitted=sum(m.emitted for m in rank_metrics),
            wall_seconds=time.perf_counter() - t0,
        )

    def convert_regions(self, bamx_path: str | os.PathLike[str],
                        baix_path: str | os.PathLike[str] | None,
                        regions: list, target: str,
                        out_dir: str | os.PathLike[str], nprocs: int = 1,
                        executor: str = "simulate", mode: str = "start",
                        record_filter: RecordFilter | None = None,
                        ) -> ConversionResult:
        """Partial conversion of the *union* of several regions.

        Records selected by more than one region are converted exactly
        once; the combined index set is split evenly across ranks.  One
        of the "more partial conversion types" the paper's future work
        calls for.  Parameters match :meth:`convert_region`.
        """
        if nprocs < 1:
            raise ConversionError(f"nprocs {nprocs} must be >= 1")
        if not regions:
            raise ConversionError("convert_regions needs >= 1 region")
        if mode not in ("start", "overlap"):
            raise ConversionError(
                f"unknown partial-conversion mode {mode!r}; choose "
                f"'start' or 'overlap'")
        bamx_path = os.fspath(bamx_path)
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        t0 = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("convert.regions", "bam",
                         args={"store": os.path.basename(bamx_path),
                               "target": target, "nprocs": nprocs,
                               "regions": len(regions), "mode": mode}):
            with open_record_store(bamx_path) as reader:
                header = reader.header
            parsed = [GenomicRegion.parse(r, header)
                      if isinstance(r, str) else r for r in regions]
            index_lists = []
            with tracer.span("locate", "bam", args={"mode": mode}):
                if mode == "start":
                    if baix_path is None:
                        baix_path = default_index_path(bamx_path)
                    index = BaixIndex.load(baix_path)
                    for region in parsed:
                        lo, hi = index.locate(header.ref_id(region.chrom),
                                              region.start, region.end)
                        index_lists.append(index.record_indices(lo, hi))
                else:
                    from ..formats.baix2 import BaixOverlapIndex
                    from ..formats.baix2 import default_index_path \
                        as baix2_path
                    if baix_path is None:
                        baix_path = baix2_path(bamx_path)
                    index2 = BaixOverlapIndex.load(baix_path)
                    for region in parsed:
                        index_lists.append(index2.locate_overlaps(
                            header.ref_id(region.chrom), region.start,
                            region.end))
            # Union without duplicates, preserving first-seen order.
            seen: set[int] = set()
            indices: list[int] = []
            for index_list in index_lists:
                for i in index_list:
                    i = int(i)
                    if i not in seen:
                        seen.add(i)
                        indices.append(i)
            target_plugin = get_target(target)
            stem = os.path.splitext(os.path.basename(bamx_path))[0]
            shards, batch_size, tuning = resolve_tuning(
                self.tuner, target=target,
                store_format=self._store_kind(bamx_path),
                pipeline=f"{self.pipeline}.pick",
                total_units=len(indices), nprocs=nprocs,
                shards=self.shards_per_rank,
                batch_size=self.batch_size,
                default_batch=DEFAULT_BATCH_SIZE)
            specs = [
                BamxPickSpec(bamx_path, tuple(indices[start:stop]), target,
                             make_output_path(out_dir, f"{stem}.regions",
                                              rank, target_plugin),
                             record_filter or ACCEPT_ALL,
                             batch_size, self.pipeline)
                for rank, (start, stop)
                in enumerate(partition_records(len(indices), nprocs))
            ]
            rank_metrics = execute_rank_tasks(
                _bamx_pick_task, specs, executor,
                shards_per_rank=shards, tuning=tuning)
            record_tuning(tracer, tuning)
        return ConversionResult(
            target=target,
            outputs=[s.out_path for s in specs],
            rank_metrics=rank_metrics,
            records=sum(m.records for m in rank_metrics),
            emitted=sum(m.emitted for m in rank_metrics),
            wall_seconds=time.perf_counter() - t0,
        )


def convert_bam_direct(bam_path: str | os.PathLike[str], target: str,
                       out_path: str | os.PathLike[str]) -> ConversionResult:
    """Sequential BAM -> * conversion without preprocessing.

    This is "our system without preprocessing" in Table I: the BGZF
    stream is decoded front-to-back on one core and converted on the
    fly.
    """
    t0 = time.perf_counter()
    metrics = RankMetrics()
    bam_path = os.fspath(bam_path)
    out_path = os.fspath(out_path)
    with get_tracer().span("convert.direct", "bam",
                           args={"input": os.path.basename(bam_path),
                                 "target": target}), \
            BamReader(bam_path) as reader:
        target_plugin = bind_target(get_target(target), reader.header)
        metrics.bytes_read += os.path.getsize(bam_path)
        _write_target(iter(reader), target_plugin, reader.header, out_path,
                      metrics)
    rank = finish_rank_metrics(metrics, t0)
    return ConversionResult(
        target=target,
        outputs=[out_path],
        rank_metrics=[rank],
        records=rank.records,
        emitted=rank.emitted,
        wall_seconds=time.perf_counter() - t0,
    )
