"""Genomic region parsing and validation.

Regions are written the samtools way — ``chr1:1000-2000`` (1-based,
inclusive) — and stored 0-based half-open.  ``chr1`` alone means the
whole reference.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import RegionError
from ..formats.header import SamHeader

_REGION_RE = re.compile(
    r"^(?P<chrom>[^:]+?)(?::(?P<start>[\d,]+)(?:-(?P<end>[\d,]+))?)?$")


@dataclass(frozen=True, slots=True)
class GenomicRegion:
    """A reference interval, 0-based half-open."""

    chrom: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise RegionError(
                f"invalid region {self.chrom}:{self.start}-{self.end}")

    @property
    def length(self) -> int:
        """Interval length in bases."""
        return self.end - self.start

    def __str__(self) -> str:
        return f"{self.chrom}:{self.start + 1}-{self.end}"

    @classmethod
    def parse(cls, text: str,
              header: SamHeader | None = None) -> "GenomicRegion":
        """Parse a samtools-style region string.

        When *header* is given the chromosome must exist in it and a
        bare chromosome name expands to its full length; without a
        header, a bare name spans the maximum indexable coordinate.
        """
        m = _REGION_RE.match(text.strip())
        if not m:
            raise RegionError(f"cannot parse region {text!r}")
        chrom = m.group("chrom")
        if header is not None and not header.has_reference(chrom):
            raise RegionError(f"unknown reference {chrom!r} in region "
                              f"{text!r}")
        raw_start = m.group("start")
        raw_end = m.group("end")
        if raw_start is None:
            start = 0
            if header is not None:
                end = header.references[header.ref_id(chrom)].length
            else:
                end = (1 << 31) - 1
        else:
            start = int(raw_start.replace(",", "")) - 1
            if start < 0:
                raise RegionError(f"region start must be >= 1 in {text!r}")
            if raw_end is None:
                end = start + 1
            else:
                end = int(raw_end.replace(",", ""))
        if end <= start:
            raise RegionError(f"empty region {text!r}")
        region = cls(chrom, start, end)
        if header is not None:
            ref_len = header.references[header.ref_id(chrom)].length
            if start >= ref_len:
                raise RegionError(
                    f"region {text!r} starts beyond reference length "
                    f"{ref_len}")
            if end > ref_len:
                region = cls(chrom, start, ref_len)
        return region

    def clip(self, length: int) -> "GenomicRegion":
        """Clip the region to ``[0, length)``."""
        return GenomicRegion(self.chrom, min(self.start, length),
                             min(self.end, length))
