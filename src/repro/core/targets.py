"""Target-format plugins: the paper's "user program" layer.

A converter's runtime hands each parsed alignment object to a
:class:`TargetFormat`, which turns it into a target object (one output
line, or a binary record).  Adding a new output format means writing one
small plugin class and registering it — exactly the extensibility story
of §III-A: "all the user has to do is to implement a format conversion
function".

All plugins are stateless with respect to records, so any record
subset/order can be converted independently on any rank.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConversionError
from ..formats import bam as _bam
from ..formats import json_fmt, yaml_fmt
from ..formats.header import SamHeader
from ..formats.record import UNMAPPED_POS, AlignmentRecord
from ..formats.sam import format_alignment


class TargetFormat(ABC):
    """One output format: record -> target object (text line)."""

    #: Canonical format name (registry key).
    name: str
    #: Output file extension including the dot.
    extension: str
    #: "text" targets emit str lines; "binary" targets emit bytes.
    mode: str = "text"

    def file_header(self, header: SamHeader) -> str:
        """Text to place at the top of each output file ("" if none)."""
        return ""

    @abstractmethod
    def emit(self, record: AlignmentRecord) -> str | None:
        """Convert one alignment; None skips the record (e.g. unmapped
        records for interval formats)."""


class SamTarget(TargetFormat):
    """Identity conversion back to SAM text."""

    name = "sam"
    extension = ".sam"

    def file_header(self, header: SamHeader) -> str:
        return header.to_text()

    def emit(self, record: AlignmentRecord) -> str | None:
        return format_alignment(record)


class BedTarget(TargetFormat):
    """One BED6 feature per mapped alignment.

    name = read name, score = MAPQ (clamped to BED's 0-1000), strand
    from the reverse flag.  Unmapped records produce no feature.
    """

    name = "bed"
    extension = ".bed"

    def emit(self, record: AlignmentRecord) -> str | None:
        if not record.is_mapped or record.pos == UNMAPPED_POS:
            return None
        score = min(record.mapq, 1000)
        strand = "-" if record.is_reverse else "+"
        return (f"{record.rname}\t{record.pos}\t{record.end}"
                f"\t{record.qname}\t{score}\t{strand}")


class BedGraphTarget(TargetFormat):
    """One scored interval per mapped alignment (depth contribution 1).

    The record-wise converter emits each read's footprint with value 1;
    summing overlapping intervals downstream yields the coverage
    histogram (:mod:`repro.stats.histogram` computes binned coverage
    directly when that is the goal).
    """

    name = "bedgraph"
    extension = ".bedgraph"

    def emit(self, record: AlignmentRecord) -> str | None:
        if not record.is_mapped or record.pos == UNMAPPED_POS:
            return None
        return f"{record.rname}\t{record.pos}\t{record.end}\t1"


class FastaTarget(TargetFormat):
    """Read sequences in original (instrument) orientation."""

    name = "fasta"
    extension = ".fasta"

    def emit(self, record: AlignmentRecord) -> str | None:
        seq = record.original_sequence()
        if seq == "*":
            return None
        mate = record.mate_number
        suffix = f"/{mate}" if mate else ""
        return f">{record.qname}{suffix}\n{seq}"


class FastqTarget(TargetFormat):
    """Reads plus qualities in original orientation (Picard SamToFastq
    semantics: secondary/supplementary lines are skipped so each read
    appears once)."""

    name = "fastq"
    extension = ".fastq"

    def emit(self, record: AlignmentRecord) -> str | None:
        from ..formats import flags as _flags
        if not _flags.is_primary(record.flag):
            return None
        seq = record.original_sequence()
        if seq == "*":
            return None
        qual = record.original_qualities()
        if qual == "*":
            qual = "!" * len(seq)
        mate = record.mate_number
        suffix = f"/{mate}" if mate else ""
        return f"@{record.qname}{suffix}\n{seq}\n+\n{qual}"


class GffTarget(TargetFormat):
    """One GFF3 ``read_alignment`` feature per mapped record."""

    name = "gff"
    extension = ".gff3"

    def file_header(self, header: SamHeader) -> str:
        return "##gff-version 3\n"

    def emit(self, record: AlignmentRecord) -> str | None:
        from ..formats.gff import GffFeature, format_feature
        if not record.is_mapped or record.pos == UNMAPPED_POS:
            return None
        attributes = {"ID": record.qname}
        nm = record.get_tag("NM")
        if nm is not None:
            attributes["nm"] = str(nm.value)
        feature = GffFeature(
            seqid=record.rname, source="repro", type="read_alignment",
            start=record.pos, end=record.end,
            score=float(record.mapq),
            strand="-" if record.is_reverse else "+",
            attributes=attributes)
        return format_feature(feature)


class JsonTarget(TargetFormat):
    """JSON-Lines alignment objects."""

    name = "json"
    extension = ".jsonl"

    def emit(self, record: AlignmentRecord) -> str | None:
        return json_fmt.format_record(record)


class YamlTarget(TargetFormat):
    """Multi-document YAML alignment objects."""

    name = "yaml"
    extension = ".yaml"

    def emit(self, record: AlignmentRecord) -> str | None:
        # format_record ends with a newline already; strip the final one
        # because the writer appends it back per line protocol.
        return yaml_fmt.format_record(record).rstrip("\n")


class BamTarget(TargetFormat):
    """Binary BAM records (each output part is a complete BAM file:
    the converter writes the header via a BAM writer, records stream
    through :meth:`emit_binary`)."""

    name = "bam"
    extension = ".bam"
    mode = "binary"

    def __init__(self) -> None:
        self._header: SamHeader | None = None

    def bind_header(self, header: SamHeader) -> None:
        """Attach the header needed to resolve reference ids."""
        self._header = header

    def emit(self, record: AlignmentRecord) -> str | None:
        raise ConversionError("BAM is a binary target; use emit_binary")

    def emit_binary(self, record: AlignmentRecord) -> bytes:
        """Encode one record to BAM bytes."""
        if self._header is None:
            raise ConversionError("BamTarget used before bind_header()")
        return _bam.encode_record(record, self._header)


_TARGETS: dict[str, type[TargetFormat]] = {
    cls.name: cls for cls in (
        SamTarget, BedTarget, BedGraphTarget, FastaTarget, FastqTarget,
        GffTarget, JsonTarget, YamlTarget, BamTarget)
}


def get_target(name: str) -> TargetFormat:
    """Instantiate the target plugin registered under *name*."""
    try:
        return _TARGETS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_TARGETS))
        raise ConversionError(
            f"unknown target format {name!r}; known: {known}") from None


def register_target(cls: type[TargetFormat]) -> type[TargetFormat]:
    """Register a user-written plugin (usable as a class decorator)."""
    if not getattr(cls, "name", None):
        raise ConversionError("target plugin must define a name")
    _TARGETS[cls.name] = cls
    return cls


def target_names() -> list[str]:
    """Sorted list of registered target format names."""
    return sorted(_TARGETS)
