"""External coordinate sort for SAM/BAM datasets (samtools-sort
substitute).

BAI and BAIX construction, region fetches, and partial conversion all
assume coordinate-sorted input; real pipelines get that from
``samtools sort``.  This module provides the equivalent: a spill-to-disk
external merge sort that handles datasets larger than memory.

Algorithm: stream records, accumulate up to ``chunk_records``, sort the
chunk by ``(reference id, position)`` (unplaced records last, ties kept
in input order — a stable sort, like samtools), spill each run as an
intermediate SAM file, then k-way heap-merge the runs into the output.

The run-generation phase can be parallelized with the same Algorithm-1
partitioning the converters use (each rank sorts its byte range into
runs); the final merge is sequential, as in classic external sorting.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import ConversionError
from ..formats.bam import BamReader, BamWriter
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord
from ..formats.sam import SamReader, SamWriter, format_alignment, \
    parse_alignment
from ..runtime.metrics import RankMetrics
from .base import execute_rank_tasks, finish_rank_metrics
from .sam_converter import partition_alignments, scan_header

#: Default number of records held in memory per run.
DEFAULT_CHUNK_RECORDS = 250_000

#: Sort key ref id used for unplaced records (sorts after everything).
_UNPLACED = 1 << 30


def sort_key(record: AlignmentRecord, header: SamHeader,
             ) -> tuple[int, int]:
    """Coordinate sort key: (reference id, position), unplaced last."""
    if record.rname == "*" or record.pos < 0:
        return (_UNPLACED, 0)
    return (header.ref_id(record.rname), record.pos)


@dataclass(slots=True)
class SortResult:
    """Outcome of an external sort."""

    output: str
    records: int
    runs: int
    metrics: RankMetrics


def _spill_run(records: list[AlignmentRecord], header: SamHeader,
               run_dir: str, run_no: int) -> str:
    """Sort one in-memory chunk and write it as an intermediate run."""
    records.sort(key=lambda r: sort_key(r, header))
    path = os.path.join(run_dir, f"run{run_no:05d}.sam")
    with SamWriter(path) as writer:  # headerless: runs are internal
        writer.write_all(records)
    return path


def _iter_run(path: str) -> Iterator[AlignmentRecord]:
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            yield parse_alignment(line)


def merge_runs(run_paths: list[str], header: SamHeader,
               ) -> Iterator[AlignmentRecord]:
    """K-way merge of sorted runs, stable across runs in path order."""
    def keyed(path: str, order: int):
        for seq, record in enumerate(_iter_run(path)):
            yield (*sort_key(record, header), order, seq), record
    streams = [keyed(path, order)
               for order, path in enumerate(run_paths)]
    for _, record in heapq.merge(*streams, key=lambda kv: kv[0]):
        yield record


def _sort_stream(records: Iterable[AlignmentRecord], header: SamHeader,
                 write_output, chunk_records: int,
                 work_dir: str | None) -> tuple[int, int]:
    """Core external sort; returns (record count, run count)."""
    if chunk_records < 1:
        raise ConversionError(
            f"chunk_records {chunk_records} must be >= 1")
    own_dir = work_dir is None
    run_dir = tempfile.mkdtemp(prefix="repro-sort-") if own_dir \
        else os.fspath(work_dir)
    os.makedirs(run_dir, exist_ok=True)
    run_paths: list[str] = []
    chunk: list[AlignmentRecord] = []
    total = 0
    try:
        for record in records:
            chunk.append(record)
            total += 1
            if len(chunk) >= chunk_records:
                run_paths.append(_spill_run(chunk, header, run_dir,
                                            len(run_paths)))
                chunk = []
        if len(run_paths) == 0:
            # Everything fit in memory: sort and write directly.
            chunk.sort(key=lambda r: sort_key(r, header))
            write_output(iter(chunk))
            return total, 0
        if chunk:
            run_paths.append(_spill_run(chunk, header, run_dir,
                                        len(run_paths)))
        write_output(merge_runs(run_paths, header))
        return total, len(run_paths)
    finally:
        for path in run_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        if own_dir:
            try:
                os.rmdir(run_dir)
            except OSError:
                pass


def sort_sam(in_path: str | os.PathLike[str],
             out_path: str | os.PathLike[str],
             chunk_records: int = DEFAULT_CHUNK_RECORDS,
             work_dir: str | None = None) -> SortResult:
    """Coordinate-sort a SAM file into a new SAM file."""
    t0 = time.perf_counter()
    metrics = RankMetrics()
    with SamReader(in_path) as reader:
        header = reader.header.with_sort_order("coordinate")
        with SamWriter(out_path, header) as writer:
            total, runs = _sort_stream(
                iter(reader), reader.header,
                lambda recs: writer.write_all(recs), chunk_records,
                work_dir)
    metrics.records = total
    metrics.bytes_read = os.path.getsize(in_path)
    metrics.bytes_written = os.path.getsize(out_path)
    return SortResult(os.fspath(out_path), total, runs,
                      finish_rank_metrics(metrics, t0))


def sort_bam(in_path: str | os.PathLike[str],
             out_path: str | os.PathLike[str],
             chunk_records: int = DEFAULT_CHUNK_RECORDS,
             work_dir: str | None = None) -> SortResult:
    """Coordinate-sort a BAM file into a new BAM file."""
    t0 = time.perf_counter()
    metrics = RankMetrics()
    with BamReader(in_path) as reader:
        header = reader.header.with_sort_order("coordinate")
        with BamWriter(out_path, header) as writer:
            total, runs = _sort_stream(
                iter(reader), reader.header,
                lambda recs: writer.write_all(recs), chunk_records,
                work_dir)
    metrics.records = total
    metrics.bytes_read = os.path.getsize(in_path)
    metrics.bytes_written = os.path.getsize(out_path)
    return SortResult(os.fspath(out_path), total, runs,
                      finish_rank_metrics(metrics, t0))


# -- parallel run generation (Algorithm 1 over the input) ----------------


@dataclass(frozen=True, slots=True)
class SortRankSpec:
    """One run-generation rank: sort a SAM byte range into a run file."""

    sam_path: str
    start: int
    end: int
    run_path: str
    header_text: str


def _sort_rank_task(spec: SortRankSpec) -> RankMetrics:
    t0 = time.perf_counter()
    metrics = RankMetrics()
    from ..runtime.buffers import RangeLineReader
    header = SamHeader.from_text(spec.header_text)
    reader = RangeLineReader(spec.sam_path, spec.start, spec.end,
                             metrics=metrics)
    records = [parse_alignment(line) for line in reader
               if line and not line.startswith("@")]
    records.sort(key=lambda r: sort_key(r, header))
    with open(spec.run_path, "w", encoding="ascii") as fh:
        for record in records:
            fh.write(format_alignment(record))
            fh.write("\n")
    metrics.records = len(records)
    metrics.bytes_written = os.path.getsize(spec.run_path)
    return finish_rank_metrics(metrics, t0)


def parallel_sort_sam(in_path: str | os.PathLike[str],
                      out_path: str | os.PathLike[str], nprocs: int,
                      work_dir: str | os.PathLike[str],
                      executor: str = "simulate",
                      shards_per_rank: int = 1,
                      ) -> tuple[SortResult, list[RankMetrics]]:
    """Sort with parallel run generation (one sorted run per rank,
    Algorithm 1 partitioning) and a sequential k-way merge.

    Returns the overall result plus per-rank run-generation metrics.
    *shards_per_rank* is accepted for interface symmetry with the
    converters; sort run specs don't decompose (a run must be sorted
    whole), so the schedule stays static.
    """
    if nprocs < 1:
        raise ConversionError(f"nprocs {nprocs} must be >= 1")
    in_path = os.fspath(in_path)
    work_dir = os.fspath(work_dir)
    os.makedirs(work_dir, exist_ok=True)
    header, header_end = scan_header(in_path)
    partitions = partition_alignments(in_path, nprocs, header_end)
    specs = [
        SortRankSpec(in_path, p.start, p.end,
                     os.path.join(work_dir, f"run{p.rank:05d}.sam"),
                     header.to_text())
        for p in partitions
    ]
    rank_metrics = execute_rank_tasks(_sort_rank_task, specs, executor,
                                      shards_per_rank=shards_per_rank)
    merge_metrics = RankMetrics()
    t_merge = time.perf_counter()
    out_header = header.with_sort_order("coordinate")
    with SamWriter(out_path, out_header) as writer:
        total = writer.write_all(
            merge_runs([s.run_path for s in specs], header))
    merge_metrics.records = total
    merge_metrics.bytes_written = os.path.getsize(out_path)
    finish_rank_metrics(merge_metrics, t_merge)
    result = SortResult(os.fspath(out_path), total, nprocs, merge_metrics)
    return result, rank_metrics
