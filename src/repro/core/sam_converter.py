"""The SAM format converter (§III-A, Fig. 2).

Execution flow: the input SAM dataset is partitioned by byte range with
Algorithm 1 (every partition starts at a record boundary), each rank
streams its partition through the read buffer, parses SAM text lines
into alignment objects, hands them to the user program (a target
plugin), and writes the converted target objects to its own output
file.  After partitioning there is no inter-rank communication.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

from ..errors import ConversionError
from ..formats import batch as batch_codec
from ..formats.batch import DEFAULT_BATCH_SIZE, PIPELINES
from ..formats.header import SamHeader
from ..formats.sam import parse_alignment
from ..runtime import faults
from ..runtime.autotune import AutoTuner
from ..runtime.buffers import BufferedTextWriter, RangeLineReader
from ..runtime.metrics import RankMetrics
from ..runtime.partition import Partition, partition_bytes_source
from ..runtime.tracing import get_tracer
from .base import ConversionResult, ShardRemainder, bind_target, \
    emit_records, ensure_tuner, execute_rank_tasks, \
    finish_rank_metrics, make_output_path, merge_shard_outputs, \
    record_tuning, resolve_tuning, validate_knob
from .filters import ACCEPT_ALL, RecordFilter
from .targets import get_target


def scan_header(path: str | os.PathLike[str]) -> tuple[SamHeader, int]:
    """Read the ``@`` header block; return it and the byte offset of the
    first alignment line."""
    header_lines = []
    offset = 0
    with open(path, "rb") as fh:
        for raw in fh:
            if raw.startswith(b"@"):
                header_lines.append(raw.decode("ascii"))
                offset += len(raw)
            else:
                break
    return SamHeader.from_text("".join(header_lines)), offset


def partition_alignments(path: str | os.PathLike[str], nprocs: int,
                         header_end: int) -> list[Partition]:
    """Algorithm 1 over the alignment region ``[header_end, EOF)``."""
    length = os.path.getsize(path) - header_end
    with open(path, "rb") as fh:
        def read_at(offset: int, size: int) -> bytes:
            fh.seek(header_end + offset)
            return fh.read(size)
        parts = partition_bytes_source(read_at, length, nprocs)
    return [Partition(p.rank, p.start + header_end, p.end + header_end)
            for p in parts]


@dataclass(frozen=True, slots=True)
class SamRankSpec:
    """Everything one conversion rank needs (picklable for the process
    executor)."""

    sam_path: str
    start: int
    end: int
    target: str
    out_path: str
    header_text: str
    read_chunk: int
    record_filter: RecordFilter = ACCEPT_ALL
    batch_size: int = DEFAULT_BATCH_SIZE
    pipeline: str = "batch"
    write_header: bool = True
    #: Straggler budget: a batched task over this many seconds stops at
    #: the next batch boundary and yields its remaining range as a
    #: :class:`~repro.core.base.ShardRemainder` for re-splitting.
    #: ``None`` (default) never yields.
    budget_seconds: float | None = None

    def cost_hint(self) -> float:
        """Relative shard size: bytes of SAM text to parse."""
        return float(self.end - self.start)

    def split(self, n: int) -> "list[SamRankSpec]":
        """Over-decompose this rank's byte range into <= *n* shards.

        Algorithm 1 re-partitions ``[start, end)`` so every shard
        starts at a record boundary; each shard writes its own
        ``.shardNN`` part file (only shard 0 carries the file header)
        and :meth:`merge_shards` concatenates them back.  Binary
        targets decline — each part would be a complete BAM file.
        """
        if n <= 1 or self.end - self.start <= 1 \
                or get_target(self.target).mode == "binary":
            return [self]
        length = self.end - self.start
        with open(self.sam_path, "rb") as fh:
            def read_at(offset: int, size: int) -> bytes:
                fh.seek(self.start + offset)
                return fh.read(size)
            parts = partition_bytes_source(read_at, length, n)
        parts = [p for p in parts if p.length > 0]
        if len(parts) <= 1:
            return [self]
        # A tail re-split must not resurrect the header: shard 0 of a
        # headerless spec (a straggler's remainder) stays headerless.
        return [replace(self,
                        start=self.start + p.start,
                        end=self.start + p.end,
                        out_path=f"{self.out_path}.shard{i:02d}",
                        write_header=(i == 0 and self.write_header))
                for i, p in enumerate(parts)]

    def merge_shards(self, shard_specs: "list[SamRankSpec]",
                     shard_results: list[RankMetrics]) -> RankMetrics:
        """Ordered reducer: concatenate shard files into ``out_path``."""
        return merge_shard_outputs(self.out_path, shard_specs,
                                   shard_results)


def _sam_rank_task(spec: SamRankSpec) \
        -> RankMetrics | ShardRemainder:
    """One rank of the SAM converter: read range -> parse -> emit.

    Only the batched text pipeline honors ``budget_seconds`` (its batch
    boundaries are the natural yield points); the record pipeline and
    binary targets always run to completion.
    """
    t0 = time.perf_counter()
    metrics = RankMetrics()
    header = SamHeader.from_text(spec.header_text)
    target = bind_target(get_target(spec.target), header)
    reader = RangeLineReader(spec.sam_path, spec.start, spec.end,
                             chunk_size=spec.read_chunk, metrics=metrics)

    def parsed_records():
        stream = (parse_alignment(line) for line in reader
                  if line and not line.startswith("@"))
        yield from spec.record_filter.apply(stream)

    if target.mode == "binary":
        from ..formats.bam import BamWriter
        writer = BamWriter(spec.out_path, header)
        emitted = 0
        for record in parsed_records():
            writer.write(record)
            emitted += 1
        writer.close()
        metrics.records += emitted
        metrics.emitted += emitted
        metrics.bytes_written += os.path.getsize(spec.out_path)
    elif spec.pipeline == "batch":
        tail = _sam_rank_batched(spec, reader, target, header, metrics,
                                 t0)
        if tail is not None:
            return ShardRemainder(finish_rank_metrics(metrics, t0),
                                  tail)
    else:
        with BufferedTextWriter(spec.out_path, metrics=metrics) as writer:
            head = target.file_header(header)
            if head and spec.write_header:
                writer.write_text(head)
            emit_records(parsed_records(), target, writer, metrics)
    return finish_rank_metrics(metrics, t0)


def _sam_rank_batched(spec: SamRankSpec, reader: RangeLineReader, target,
                      header: SamHeader, metrics: RankMetrics,
                      t_start: float) -> SamRankSpec | None:
    """Batched text pipeline: chunk split -> column fastpath -> joined
    writes.  Output is byte-identical to the per-record path.

    Straggler cooperation: with ``spec.budget_seconds`` set, elapsed
    time is checked after every batch; once over budget the task stops
    at the batch boundary (everything written so far is a valid
    prefix) and returns the spec of its *remaining* byte range — a
    headerless, un-budgeted sibling writing ``<out_path>.tail`` — for
    the scheduler to re-split.  Consumed bytes are exact: every line
    the reader yields cost ``len(line) + 1`` (the stripped newline),
    and the only line without one is the file's last, in which case
    the resume offset lands at/past ``end`` and the task is complete.
    """
    fast_emit = batch_codec.sam_fastpath_for(target)
    tracer = get_tracer()
    seen = emitted = fallbacks = batches = 0
    consumed = 0
    deadline = None if spec.budget_seconds is None \
        else t_start + spec.budget_seconds
    tail: SamRankSpec | None = None
    with tracer.span("batch.pipeline", "sam",
                     args={"batch_size": spec.batch_size,
                           "fastpath": fast_emit is not None,
                           "target": spec.target}) as span, \
            BufferedTextWriter(spec.out_path, metrics=metrics) as writer:
        head = target.file_header(header)
        if head and spec.write_header:
            writer.write_text(head)
        for lines in reader.iter_batches(spec.batch_size):
            faults.fire("shard.batch")
            out_lines: list[str] = []
            if fast_emit is not None:
                s, e, f = batch_codec.convert_sam_lines(
                    lines, target, fast_emit, spec.record_filter,
                    out_lines)
            else:
                s, e = batch_codec.convert_sam_lines_record(
                    lines, target, spec.record_filter, out_lines)
                f = 0
            if out_lines:
                writer.write_lines(out_lines)
            seen += s
            emitted += e
            fallbacks += f
            batches += 1
            consumed += sum(len(line) for line in lines) + len(lines)
            if deadline is not None \
                    and time.perf_counter() > deadline:
                resume = spec.start + consumed
                if resume < spec.end:
                    tail = replace(spec, start=resume,
                                   out_path=spec.out_path + ".tail",
                                   write_header=False,
                                   budget_seconds=None)
                    break
        if span is not None:
            span.args.update(batches=batches, records=seen,
                             fallbacks=fallbacks)
            if tail is not None:
                span.args.update(yielded=True,
                                 resume_offset=tail.start)
    metrics.records += seen
    metrics.emitted += emitted
    metrics.fallbacks += fallbacks
    return tail


class SamConverter:
    """Parallel SAM -> * converter (no preprocessing required).

    Parameters
    ----------
    read_chunk:
        Read-buffer size per rank, in bytes.
    batch_size:
        Records per batch through the chunk-level codecs.
    pipeline:
        ``"batch"`` (default) runs the chunk-level codecs with
        per-target fastpaths; ``"record"`` keeps the strict
        record-at-a-time path.  Outputs are byte-identical.
    shards_per_rank:
        Over-decomposition factor: each rank's range is split into up
        to this many shards pulled dynamically by the shared worker
        pool.  ``1`` (default) is the paper-faithful static schedule;
        ``"auto"`` lets the cost model pick per job.
    tuner:
        :class:`~repro.runtime.autotune.AutoTuner` resolving ``"auto"``
        knobs, pricing straggler budgets, and learning from every run.
        When omitted and a knob is ``"auto"``, a private in-memory
        tuner is created (cold -> defaults, warming across this
        instance's calls).
    """

    def __init__(self, read_chunk: int = 4 << 20,
                 batch_size: int | str = DEFAULT_BATCH_SIZE,
                 pipeline: str = "batch",
                 shards_per_rank: int | str = 1,
                 tuner: AutoTuner | None = None) -> None:
        if pipeline not in PIPELINES:
            raise ConversionError(
                f"unknown pipeline {pipeline!r}; choose one of "
                f"{PIPELINES}")
        self.read_chunk = read_chunk
        self.batch_size = validate_knob(batch_size, "batch_size")
        self.pipeline = pipeline
        self.shards_per_rank = validate_knob(shards_per_rank,
                                             "shards_per_rank")
        self.tuner = ensure_tuner(tuner, self.shards_per_rank,
                                  self.batch_size)

    def convert(self, sam_path: str | os.PathLike[str], target: str,
                out_dir: str | os.PathLike[str], nprocs: int = 1,
                executor: str = "simulate",
                record_filter: RecordFilter | None = None,
                ) -> ConversionResult:
        """Convert *sam_path* to *target*, one output part per rank.

        *record_filter* (a :class:`~repro.core.filters.RecordFilter`)
        restricts which records are converted — the flag/MAPQ analogue
        of partial conversion.  Returns a
        :class:`~repro.core.base.ConversionResult` whose
        ``rank_metrics`` feed the simulated-cluster model.
        """
        if nprocs < 1:
            raise ConversionError(f"nprocs {nprocs} must be >= 1")
        sam_path = os.fspath(sam_path)
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        t0 = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("convert", "sam",
                         args={"input": os.path.basename(sam_path),
                               "target": target, "nprocs": nprocs}):
            with tracer.span("partition", "sam"):
                header, header_end = scan_header(sam_path)
                partitions = partition_alignments(sam_path, nprocs,
                                                  header_end)
            target_plugin = get_target(target)  # validates the name early
            stem = os.path.splitext(os.path.basename(sam_path))[0]
            shards, batch_size, tuning = resolve_tuning(
                self.tuner, target=target, store_format="sam",
                pipeline=self.pipeline,
                total_units=os.path.getsize(sam_path) - header_end,
                nprocs=nprocs, shards=self.shards_per_rank,
                batch_size=self.batch_size,
                default_batch=DEFAULT_BATCH_SIZE)
            specs = [
                SamRankSpec(
                    sam_path=sam_path,
                    start=p.start,
                    end=p.end,
                    target=target,
                    out_path=make_output_path(out_dir, stem, p.rank,
                                              target_plugin),
                    header_text=header.to_text(),
                    read_chunk=self.read_chunk,
                    record_filter=record_filter or ACCEPT_ALL,
                    batch_size=batch_size,
                    pipeline=self.pipeline,
                )
                for p in partitions
            ]
            rank_metrics = execute_rank_tasks(
                _sam_rank_task, specs, executor,
                shards_per_rank=shards, tuning=tuning)
            record_tuning(tracer, tuning)
        result = ConversionResult(
            target=target,
            outputs=[s.out_path for s in specs],
            rank_metrics=rank_metrics,
            records=sum(m.records for m in rank_metrics),
            emitted=sum(m.emitted for m in rank_metrics),
            wall_seconds=time.perf_counter() - t0,
        )
        return result


def convert_sam(sam_path: str | os.PathLike[str], target: str,
                out_dir: str | os.PathLike[str], nprocs: int = 1,
                executor: str = "simulate") -> ConversionResult:
    """Convenience wrapper around :class:`SamConverter`."""
    return SamConverter().convert(sam_path, target, out_dir, nprocs,
                                  executor)
