"""High-level facade: one object for a dataset's whole lifecycle.

:class:`AlignmentDataset` wraps the individual subsystems — format
codecs, sort, indexes, converters, statistics, tools — behind the API a
downstream user reaches for first::

    ds = AlignmentDataset.open("sample.bam")
    ds = ds.sorted("sorted.bam")           # external merge sort
    store = ds.preprocess("work/")         # BAMX/BAIX (+BAIX2)
    store.convert("bed", "out/", nprocs=8)
    store.convert_region("chr1:1-50000", "sam", "out/", nprocs=4)
    print(ds.flagstat().format_report())
    histos = ds.histogram(bin_size=25)

Everything delegates to the underlying modules, so the facade adds no
behaviour of its own — just discoverability.
"""

from __future__ import annotations

import os
from collections.abc import Iterator

import numpy as np

from ..errors import ConversionError
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord
from .base import ConversionResult
from .filters import RecordFilter
from .region import GenomicRegion


class AlignmentDataset:
    """A SAM or BAM file on disk, with lifecycle operations."""

    def __init__(self, path: str | os.PathLike[str], kind: str) -> None:
        self.path = os.fspath(path)
        if kind not in ("sam", "bam"):
            raise ConversionError(f"unsupported dataset kind {kind!r}")
        self.kind = kind

    # -- construction ----------------------------------------------------

    @classmethod
    def open(cls, path: str | os.PathLike[str]) -> "AlignmentDataset":
        """Open an existing .sam or .bam file."""
        lowered = os.fspath(path).lower()
        if lowered.endswith(".sam"):
            return cls(path, "sam")
        if lowered.endswith(".bam"):
            return cls(path, "bam")
        raise ConversionError(
            f"cannot open {os.fspath(path)!r}: expected .sam or .bam")

    @classmethod
    def simulate(cls, path: str | os.PathLike[str], n_templates: int,
                 chromosomes: list[tuple[str, int]] | None = None,
                 seed: int = 0, sort: bool = True) -> "AlignmentDataset":
        """Create a synthetic dataset at *path* and open it."""
        from ..simdata import build_bam_dataset, build_sam_dataset
        if os.fspath(path).lower().endswith(".bam"):
            build_bam_dataset(path, n_templates, chromosomes, seed, sort)
        else:
            build_sam_dataset(path, n_templates, chromosomes, seed, sort)
        return cls.open(path)

    # -- inspection --------------------------------------------------------

    @property
    def header(self) -> SamHeader:
        """The dataset's SAM header."""
        if self.kind == "bam":
            from ..formats.bam import BamReader
            with BamReader(self.path) as reader:
                return reader.header
        from ..formats.sam import SamReader
        with SamReader(self.path) as reader:
            return reader.header

    def records(self) -> Iterator[AlignmentRecord]:
        """Stream every record (sequential read)."""
        if self.kind == "bam":
            from ..formats.bam import BamReader
            with BamReader(self.path) as reader:
                yield from reader
        else:
            from ..formats.sam import SamReader
            with SamReader(self.path) as reader:
                yield from reader

    def count(self) -> int:
        """Number of records (full scan)."""
        return sum(1 for _ in self.records())

    def flagstat(self):
        """samtools-flagstat summary (see :mod:`repro.tools.flagstat`)."""
        from ..tools import flagstat
        return flagstat(self.path)

    def validate(self, check_mates: bool = True):
        """Structural validation report (see
        :mod:`repro.tools.validate`)."""
        from ..tools import validate_file
        return validate_file(self.path, check_mates=check_mates)

    def histogram(self, bin_size: int = 25, nprocs: int = 1,
                  ) -> dict[str, np.ndarray]:
        """Binned coverage histograms per reference."""
        if self.kind == "sam" and nprocs > 1:
            from ..stats.histogram_parallel import histogram_parallel
            histos, _ = histogram_parallel(self.path, bin_size, nprocs)
            return histos
        from ..stats.histogram import histogram_from_records
        return histogram_from_records(self.records(), self.header,
                                      bin_size)

    # -- lifecycle ----------------------------------------------------------

    def sorted(self, out_path: str | os.PathLike[str],
               chunk_records: int = 250_000) -> "AlignmentDataset":
        """Coordinate-sort into *out_path*; returns the new dataset."""
        from .sort import sort_bam, sort_sam
        if self.kind == "bam":
            sort_bam(self.path, out_path, chunk_records)
        else:
            sort_sam(self.path, out_path, chunk_records)
        return AlignmentDataset.open(out_path)

    def convert(self, target: str, out_dir: str | os.PathLike[str],
                nprocs: int = 1, executor: str = "simulate",
                record_filter: RecordFilter | None = None,
                work_dir: str | os.PathLike[str] | None = None,
                ) -> ConversionResult:
        """Parallel conversion; BAM input is preprocessed on demand."""
        from .sam_converter import SamConverter
        if self.kind == "sam":
            return SamConverter().convert(self.path, target, out_dir,
                                          nprocs, executor,
                                          record_filter=record_filter)
        store = self.preprocess(work_dir or os.fspath(out_dir))
        return store.convert(target, out_dir, nprocs, executor,
                             record_filter=record_filter)

    def preprocess(self, work_dir: str | os.PathLike[str],
                   compress: bool = False,
                   nprocs: int = 1) -> "RecordStoreHandle":
        """Produce a random-access store (BAMX/BAMZ + indexes).

        BAM input preprocesses sequentially (§III-B); SAM input uses
        the parallel preprocessing of §III-C and returns a handle on
        the *first* part (use :class:`repro.core.PreprocSamConverter`
        directly for full M×N control).
        """
        if self.kind == "bam":
            from .bam_converter import BamConverter
            store_path, baix, _ = BamConverter().preprocess(
                self.path, work_dir, compress=compress)
            return RecordStoreHandle(store_path, baix)
        from .samp_converter import PreprocSamConverter
        paths, _ = PreprocSamConverter().preprocess(self.path, work_dir,
                                                    nprocs)
        from ..formats.baix import default_index_path
        return RecordStoreHandle(paths[0], default_index_path(paths[0]))


class RecordStoreHandle:
    """A preprocessed BAMX/BAMZ store plus its indexes."""

    def __init__(self, store_path: str, baix_path: str) -> None:
        self.store_path = store_path
        self.baix_path = baix_path

    def __len__(self) -> int:
        from ..formats.store import open_record_store
        with open_record_store(self.store_path) as reader:
            return len(reader)

    def convert(self, target: str, out_dir: str | os.PathLike[str],
                nprocs: int = 1, executor: str = "simulate",
                record_filter: RecordFilter | None = None,
                ) -> ConversionResult:
        """Parallel full conversion."""
        from .bam_converter import BamConverter
        return BamConverter().convert(self.store_path, target, out_dir,
                                      nprocs, executor,
                                      record_filter=record_filter)

    def convert_region(self, region: GenomicRegion | str, target: str,
                       out_dir: str | os.PathLike[str], nprocs: int = 1,
                       executor: str = "simulate", mode: str = "start",
                       record_filter: RecordFilter | None = None,
                       ) -> ConversionResult:
        """Partial conversion of one region."""
        from .bam_converter import BamConverter
        baix = self.baix_path if mode == "start" else None
        return BamConverter().convert_region(
            self.store_path, baix, region, target, out_dir, nprocs,
            executor, mode=mode, record_filter=record_filter)

    def fetch(self, region: GenomicRegion | str, mode: str = "start",
              ) -> list[AlignmentRecord]:
        """Records of one region, in coordinate order."""
        from ..formats.baix import BaixIndex
        from ..formats.store import open_record_store
        with open_record_store(self.store_path) as reader:
            header = reader.header
            if isinstance(region, str):
                region = GenomicRegion.parse(region, header)
            ref_id = header.ref_id(region.chrom)
            if mode == "start":
                index = BaixIndex.load(self.baix_path)
                lo, hi = index.locate(ref_id, region.start, region.end)
                indices = index.record_indices(lo, hi)
            elif mode == "overlap":
                from ..formats.baix2 import BaixOverlapIndex
                from ..formats.baix2 import default_index_path
                index2 = BaixOverlapIndex.load(
                    default_index_path(self.store_path))
                indices = index2.locate_overlaps(ref_id, region.start,
                                                 region.end)
            else:
                raise ConversionError(
                    f"unknown fetch mode {mode!r}")
            return [reader[int(i)] for i in indices]
