"""Converter runtime scaffolding shared by the three converter instances.

The paper separates a *runtime system* (partitioning, buffering,
parallel execution, resource management) from the *user program* (the
per-record conversion function).  This module is the runtime system's
common machinery:

* :func:`execute_rank_tasks` — run one task per rank under the chosen
  executor (``simulate`` / ``thread`` / ``process``);
* :class:`ConversionResult` — what every converter returns: output
  paths, per-rank metrics (feeding the cluster model), record counts;
* :func:`emit_records` — the inner loop converting parsed alignment
  objects through a target plugin into a write buffer, with compute
  time metered separately from I/O.
"""

from __future__ import annotations

import os
import shutil
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import ConversionError, RuntimeLayerError
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord
from ..runtime.autotune import AUTO, JobTuning, MAX_RESPLIT_ROUNDS
from ..runtime.buffers import BufferedTextWriter
from ..runtime.executor import get_shared_executor
from ..runtime.metrics import RankMetrics
from ..runtime.tracing import Tracer, get_tracer
from .targets import TargetFormat

#: Executors accepted by the converters.
EXECUTORS = ("simulate", "thread", "process")


def validate_knob(value: Any, name: str) -> int | str:
    """Validate a tuning knob that accepts a positive int or ``"auto"``.

    Returns the int or the canonical :data:`~repro.runtime.autotune.AUTO`
    sentinel; anything else raises :class:`~repro.errors.ConversionError`
    naming the bad value (no raw ``int()`` tracebacks).
    """
    if isinstance(value, str):
        if value.strip().lower() == AUTO:
            return AUTO
        try:
            value = int(value)
        except ValueError:
            raise ConversionError(
                f"invalid {name} value {value!r}: expected a positive "
                f"integer or 'auto'") from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConversionError(
            f"invalid {name} value {value!r}: expected a positive "
            f"integer or 'auto'")
    if value < 1:
        raise ConversionError(
            f"invalid {name} value {value}: must be >= 1 (or 'auto')")
    return value


def ensure_tuner(tuner: Any, *knobs: Any) -> Any:
    """The tuner a converter should use.

    An explicit tuner wins.  Otherwise, when any knob is ``"auto"``, a
    private in-memory tuner is created (cold -> defaults, warming
    across this converter instance's calls); with neither, ``None`` —
    fully manual knobs pay zero tuning overhead.
    """
    if tuner is not None or AUTO not in knobs:
        return tuner
    from ..runtime.autotune import AutoTuner, CostModel
    return AutoTuner(CostModel())


def resolve_tuning(tuner: Any, target: str, store_format: str,
                   pipeline: str, total_units: float, nprocs: int,
                   shards: int | str, batch_size: int | str,
                   default_batch: int,
                   ) -> tuple[int, int, JobTuning | None]:
    """Resolve possibly-``"auto"`` knobs into concrete values.

    Returns ``(shards_per_rank, batch_size, tuning)``; without a tuner
    the ``"auto"`` knobs just fall back to the defaults and *tuning* is
    ``None`` (no budgets, no observations).
    """
    if tuner is None:
        return (1 if shards == AUTO else shards,
                default_batch if batch_size == AUTO else batch_size,
                None)
    tuning = tuner.begin_job(
        target=target, store_format=store_format, pipeline=pipeline,
        total_units=total_units, nprocs=nprocs, shards=shards,
        batch_size=batch_size, default_batch=default_batch)
    return tuning.shards_per_rank, tuning.batch_size, tuning


def record_tuning(tracer: Tracer, tuning: JobTuning | None) -> None:
    """Persist a job's observations and trace its ``cost_model`` block.

    The provenance span nests under whatever span is active — the
    converter's ``convert`` span, and through it the service's
    per-attempt job span — so ``repro status --trace JOB`` explains
    every auto decision.
    """
    if tuning is None:
        return
    tuning.finish()
    with tracer.span("autotune", "autotune",
                     args={"cost_model": tuning.provenance()}):
        pass


@dataclass(slots=True)
class ShardRemainder:
    """A budgeted shard task yielded early: partial results plus the
    spec covering its unconsumed input.

    Cooperative straggler handling: a spec carrying ``budget_seconds``
    checks its elapsed time at batch boundaries and, once over budget,
    stops cleanly (output written so far stays valid) and returns this
    instead of plain metrics.  The scheduler re-splits ``tail_spec``
    and dispatches the pieces across the pool; the ordered per-rank
    reduction keeps the final output byte-identical.
    """

    metrics: RankMetrics
    tail_spec: Any


@dataclass(slots=True)
class ConversionResult:
    """Outcome of one conversion run.

    Attributes
    ----------
    target:
        Target format name.
    outputs:
        Paths of the produced part files, in rank order.
    rank_metrics:
        One :class:`RankMetrics` per rank (conversion phase only).
    preprocess_metrics:
        Metrics of the preprocessing phase, when the converter has one.
    records:
        Total records converted (after target-side skips this is the
        number *emitted*, tracked separately as ``emitted``).
    emitted:
        Total target objects written.
    wall_seconds:
        Real elapsed time of the run on this machine.
    """

    target: str
    outputs: list[str] = field(default_factory=list)
    rank_metrics: list[RankMetrics] = field(default_factory=list)
    preprocess_metrics: list[RankMetrics] = field(default_factory=list)
    records: int = 0
    emitted: int = 0
    wall_seconds: float = 0.0

    @property
    def nprocs(self) -> int:
        """Number of ranks that participated in conversion."""
        return len(self.rank_metrics)


def execute_rank_tasks(task_fn: Callable[[Any], RankMetrics],
                       specs: Sequence[Any],
                       executor: str = "simulate",
                       shards_per_rank: int = 1,
                       tuning: JobTuning | None = None,
                       ) -> list[RankMetrics]:
    """Run ``task_fn(spec)`` once per rank spec; return per-rank metrics.

    Executors
    ---------
    ``simulate``
        Ranks run one after another in this process.  Per-rank timings
        are undistorted by contention, which is what the simulated-
        cluster model needs; this is the default and what the benches
        use.
    ``thread``
        Ranks run on the shared persistent thread pool (real
        concurrency, shared memory), capped at ``os.cpu_count()``
        workers.
    ``process``
        Ranks run on the shared persistent process pool (true
        parallelism; *task_fn* and specs must be picklable).  Workers
        are forked where the platform supports it and spawned
        otherwise.

    Sharding
    --------
    With ``shards_per_rank > 1`` every spec that implements ``split(n)``
    is over-decomposed into up to *n* shards, which the shared pool
    pulls dynamically longest-first; per-shard results are folded back
    to per-rank results via each spec's ``merge_shards`` (an ordered
    reducer, so outputs stay byte-identical to the static run).  Specs
    without ``split`` — and calls where nothing decomposes — fall back
    to the static one-task-per-rank schedule.

    Tuning
    ------
    With a :class:`~repro.runtime.autotune.JobTuning`, the sharded
    schedule becomes *adaptive*: shards carry straggler budgets (model
    prediction x straggler factor, or — on the sequential executor with
    a cold model — the median of completed siblings), budget-blown
    shards yield a :class:`ShardRemainder` whose tail is re-split and
    re-dispatched (bounded waves; the final wave is un-budgeted so the
    job always terminates), and measured ``(units, seconds)`` pairs
    flow back into the cost model from both the sharded and the static
    path.
    """
    if executor not in EXECUTORS:
        raise RuntimeLayerError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if not specs:
        raise RuntimeLayerError("no rank specs to execute")
    if shards_per_rank < 1:
        raise RuntimeLayerError(
            f"shards_per_rank must be >= 1, got {shards_per_rank}")
    tracer = get_tracer()
    groups = _shard_plan(specs, shards_per_rank)
    if groups is not None:
        return _execute_sharded(task_fn, specs, groups, executor, tracer,
                                tuning)
    if tracer.enabled:
        results = _execute_rank_tasks_traced(task_fn, specs, executor,
                                             tracer)
    elif executor == "simulate" or len(specs) == 1:
        results = [task_fn(spec) for spec in specs]
    else:
        labels = [f"rank {rank}" for rank in range(len(specs))]
        results = get_shared_executor().map_tasks(
            task_fn, list(specs), executor, labels=labels)
    if tuning is not None:
        _feed_observations(tuning, specs, results)
    return results


def _feed_observations(tuning: JobTuning, specs: Sequence[Any],
                       results: Sequence[Any]) -> None:
    """Collect measured ``(units, seconds)`` pairs for the cost model.

    Results that are not :class:`RankMetrics`-shaped (preprocess parse
    shards return tuples) are skipped — the model only learns from
    timed work.
    """
    pairs = []
    for spec, result in zip(specs, results):
        seconds = getattr(result, "total_seconds", None)
        if seconds is not None:
            pairs.append((_cost_hint(spec), float(seconds)))
    if pairs:
        tuning.observe(pairs)


def _shard_plan(specs: Sequence[Any], shards_per_rank: int,
                ) -> list[list[Any]] | None:
    """Split each spec into shards; ``None`` when nothing decomposes.

    Specs opt in by implementing ``split(n) -> list[spec]``; a spec may
    return ``[self]`` to decline (single record, binary target, ...).
    Returning ``None`` keeps undecomposable workloads — sort/histogram/
    flagstat specs, ``--shards 1`` — on the static path untouched.
    """
    if shards_per_rank <= 1:
        return None
    groups: list[list[Any]] = []
    decomposed = False
    for spec in specs:
        split = getattr(spec, "split", None)
        group = [spec] if split is None else split(shards_per_rank)
        if not group:
            raise RuntimeLayerError(
                f"split() of {type(spec).__name__} returned no shards")
        decomposed = decomposed or len(group) > 1
        groups.append(group)
    return groups if decomposed else None


def _cost_hint(spec: Any) -> float:
    """Relative size of a shard, for longest-first dispatch."""
    hint = getattr(spec, "cost_hint", None)
    return float(hint()) if hint is not None else 1.0


def _shard_label(path: tuple[int, ...]) -> int | str:
    """Span/label id of a shard: the plain index for first-wave shards
    (back-compat with trace consumers), dotted for re-split pieces
    (``2.1`` = second sub-shard of original shard 2)."""
    if len(path) == 1:
        return path[0]
    return ".".join(str(p) for p in path)


def _supports_budget(spec: Any) -> bool:
    return getattr(spec, "budget_seconds", "absent") != "absent" \
        and getattr(spec, "split", None) is not None


def _with_budget(spec: Any, tuning: JobTuning | None) -> Any:
    """Price a shard's straggler budget from the cost model.

    Leaves the spec untouched when there is no tuning, the spec cannot
    yield, or the model is cold (the sequential executor then falls
    back to sibling-median budgets mid-wave).
    """
    if tuning is None or not _supports_budget(spec):
        return spec
    budget = tuning.budget_for(_cost_hint(spec))
    if budget is None:
        return spec
    return replace(spec, budget_seconds=budget)


def _execute_sharded(task_fn: Callable[[Any], RankMetrics],
                     specs: Sequence[Any], groups: list[list[Any]],
                     executor: str, tracer: Tracer,
                     tuning: JobTuning | None = None,
                     ) -> list[RankMetrics]:
    """Run the over-decomposed schedule and reduce shards per rank.

    Shards of all ranks are flattened into one work list and dispatched
    longest-first; the shared pool's workers pull them dynamically, so
    a skewed rank's extra shards land on whichever workers are free.

    With *tuning*, the schedule runs in waves: budgeted shards that
    yield a :class:`ShardRemainder` have their tail re-split
    (``tuning.resplit_factor`` pieces) and re-dispatched in the next
    wave; after :data:`~repro.runtime.autotune.MAX_RESPLIT_ROUNDS`
    waves budgets are dropped so the schedule always terminates.  Every
    piece is keyed by its split path (original shard 2's first tail
    piece is ``(2, 0)``), and the per-rank reduction sorts pieces by
    path — the same ordered reducer that keeps concatenated outputs
    byte-identical regardless of how many times a shard was re-split.
    """
    entries: list[tuple[int, tuple[int, ...], Any, bool]] = []
    for rank, group in enumerate(groups):
        # A one-piece group's shard IS the rank spec (same out_path), so
        # it must not yield a tail to merge into itself; budgets apply
        # only where shard files are distinct from the rank output.
        budget_ok = len(group) > 1
        for shard_idx, shard in enumerate(group):
            entries.append((rank, (shard_idx,),
                            _with_budget(shard, tuning) if budget_ok
                            else shard, budget_ok))
    parent_id = None
    if tracer.enabled:
        caller = tracer.current_span()
        parent_id = caller.span_id if caller is not None else None
    pieces: dict[tuple[int, tuple[int, ...]], tuple[Any, Any]] = {}
    rounds = 0
    while entries:
        budgets_live = tuning is not None and rounds < MAX_RESPLIT_ROUNDS
        results = _dispatch_shards(task_fn, entries, executor, tracer,
                                   parent_id, tuning, budgets_live)
        next_entries: list[tuple[int, tuple[int, ...], Any, bool]] = []
        for (rank, path, spec, _), result in zip(entries, results):
            if not isinstance(result, ShardRemainder):
                pieces[(rank, path)] = (spec, result)
                continue
            pieces[(rank, path)] = (spec, result.metrics)
            factor = tuning.resplit_factor if tuning is not None else 2
            subs = result.tail_spec.split(factor)
            if tuning is not None:
                tuning.note_resplit(len(subs))
            for sub_idx, sub in enumerate(subs):
                next_entries.append((rank, path + (sub_idx,),
                                     _with_budget(sub, tuning)
                                     if budgets_live else sub, True))
        entries = next_entries
        rounds += 1
    out = []
    for rank, (spec, group) in enumerate(zip(specs, groups)):
        ordered = sorted((path, piece) for (r, path), piece
                         in pieces.items() if r == rank)
        shard_specs = [piece[0] for _, piece in ordered]
        shard_results = [piece[1] for _, piece in ordered]
        if len(shard_specs) == 1:
            out.append(shard_results[0])
        else:
            out.append(spec.merge_shards(shard_specs, shard_results))
    if tuning is not None:
        _feed_observations(tuning,
                           [piece[0] for piece in pieces.values()],
                           [piece[1] for piece in pieces.values()])
    return out


def _dispatch_shards(task_fn: Callable[[Any], Any],
                     entries: Sequence[tuple[int, tuple[int, ...], Any,
                                             bool]],
                     executor: str, tracer: Tracer,
                     parent_id: int | None,
                     tuning: JobTuning | None,
                     budgets_live: bool) -> list[Any]:
    """Dispatch one wave of shard entries; results in entry order.

    On the sequential ``simulate`` executor a cold cost model still
    gets straggler detection: completed siblings' durations price the
    budget of each not-yet-budgeted shard (k x median), which is the
    deterministic flavor the tests pin down.  Pool executors apply
    model budgets at submit time only — their shards run concurrently,
    so there is no well-defined "completed siblings" set to consult.
    """
    labels = [f"rank {rank} shard {_shard_label(path)}"
              for rank, path, _, _ in entries]
    costs = [_cost_hint(shard) for _, _, shard, _ in entries]
    progress = None
    if tuning is not None:
        progress = lambda i, result, elapsed: \
            tuning.note_completion(elapsed)  # noqa: E731
    if executor == "simulate":
        results = []
        durations: list[float] = []
        wave_start = time.perf_counter()
        for rank, path, shard, budget_ok in entries:
            if budgets_live and budget_ok \
                    and getattr(shard, "budget_seconds", None) is None \
                    and _supports_budget(shard):
                budget = tuning.sibling_budget(durations)
                if budget is not None:
                    shard = replace(shard, budget_seconds=budget)
            t0 = time.perf_counter()
            if tracer.enabled:
                results.append(_shard_span_call(
                    task_fn, tracer, rank, _shard_label(path), shard,
                    parent_id))
            else:
                results.append(task_fn(shard))
            durations.append(time.perf_counter() - t0)
            if tuning is not None:
                tuning.note_completion(time.perf_counter() - wave_start)
        return results
    if tracer.enabled and executor == "thread":
        payloads = [(task_fn, tracer, rank, _shard_label(path), shard,
                     parent_id) for rank, path, shard, _ in entries]
        return get_shared_executor().map_tasks(
            _shard_span_entry, payloads, "thread",
            labels=labels, costs=costs, progress=progress)
    if tracer.enabled:
        payloads = [(task_fn, tracer.epoch, rank, _shard_label(path),
                     shard) for rank, path, shard, _ in entries]
        gathered = get_shared_executor().map_tasks(
            _traced_process_shard, payloads, "process",
            labels=labels, costs=costs, progress=progress)
        results = []
        for result, span_dicts, rank in gathered:
            tracer.ingest(span_dicts, rank=rank, parent_id=parent_id)
            results.append(result)
        return results
    return get_shared_executor().map_tasks(
        task_fn, [shard for _, _, shard, _ in entries], executor,
        labels=labels, costs=costs, progress=progress)


def merge_shard_outputs(out_path: str, shard_specs: Sequence[Any],
                        shard_metrics: Sequence[RankMetrics],
                        ) -> RankMetrics:
    """Ordered reducer: concatenate shard part files into *out_path*.

    Shard files are appended in shard order (shard 0 carries the header)
    and removed afterwards, so the rank's output file is byte-identical
    to the one an unsharded rank task would have written.  Returns the
    rank-level metrics fold of *shard_metrics*.
    """
    with open(out_path, "wb") as dst:
        for shard in shard_specs:
            with open(shard.out_path, "rb") as src:
                shutil.copyfileobj(src, dst)
            os.remove(shard.out_path)
    return RankMetrics.merge_shards(list(shard_metrics))


def _rank_span_call(task_fn: Callable[[Any], RankMetrics],
                    tracer: Tracer, rank: int, spec: Any,
                    parent_id: int | None) -> RankMetrics:
    """Run one rank task under a rank-tagged span of *tracer*.

    *parent_id* re-attaches the rank span to the launching span even
    when this runs on a pool thread with an empty span stack.
    """
    with tracer.activate(), tracer.rank_context(rank), \
            tracer.span("rank", "rank", rank=rank,
                        args={"task": task_fn.__name__},
                        parent_id=parent_id):
        return task_fn(spec)


def _rank_span_entry(payload: tuple) -> RankMetrics:
    """Single-argument adapter for pooled :func:`_rank_span_call`."""
    task_fn, tracer, rank, spec, parent_id = payload
    return _rank_span_call(task_fn, tracer, rank, spec, parent_id)


def _shard_span_call(task_fn: Callable[[Any], RankMetrics],
                     tracer: Tracer, rank: int, shard_idx: int | str,
                     spec: Any, parent_id: int | None) -> Any:
    """Run one shard task under a rank/shard-tagged span of *tracer*."""
    with tracer.activate(), tracer.rank_context(rank), \
            tracer.span("shard", "rank", rank=rank,
                        args={"task": task_fn.__name__, "rank": rank,
                              "shard": shard_idx},
                        parent_id=parent_id):
        return task_fn(spec)


def _shard_span_entry(payload: tuple) -> Any:
    """Single-argument adapter for pooled :func:`_shard_span_call`."""
    task_fn, tracer, rank, shard_idx, spec, parent_id = payload
    return _shard_span_call(task_fn, tracer, rank, shard_idx, spec,
                            parent_id)


def _traced_process_rank(payload: tuple) -> tuple:
    """Child-process entry: record spans locally, return them for
    gathering (module-level so the worker pool can pickle it)."""
    task_fn, epoch, rank, spec = payload
    child = Tracer(enabled=True, epoch=epoch)
    with child.activate(), child.rank_context(rank), \
            child.span("rank", "rank", rank=rank,
                       args={"task": task_fn.__name__}):
        metrics = task_fn(spec)
    return metrics, [s.to_dict() for s in child.spans()], rank


def _traced_process_shard(payload: tuple) -> tuple:
    """Child-process entry for one shard; spans tagged rank/shard."""
    task_fn, epoch, rank, shard_idx, spec = payload
    child = Tracer(enabled=True, epoch=epoch)
    with child.activate(), child.rank_context(rank), \
            child.span("shard", "rank", rank=rank,
                       args={"task": task_fn.__name__, "rank": rank,
                             "shard": shard_idx}):
        result = task_fn(spec)
    return result, [s.to_dict() for s in child.spans()], rank


def _execute_rank_tasks_traced(task_fn: Callable[[Any], RankMetrics],
                               specs: Sequence[Any], executor: str,
                               tracer: Tracer) -> list[RankMetrics]:
    """Traced variant of :func:`execute_rank_tasks` (static schedule).

    Simulate/thread ranks record straight into the shared tracer (its
    span stack is per-thread); process ranks record into a child tracer
    sharing the parent epoch and their spans are gathered to rank 0 via
    :meth:`Tracer.ingest`.
    """
    caller = tracer.current_span()
    parent_id = caller.span_id if caller is not None else None
    if executor == "simulate" or len(specs) == 1:
        return [_rank_span_call(task_fn, tracer, rank, spec, parent_id)
                for rank, spec in enumerate(specs)]
    labels = [f"rank {rank}" for rank in range(len(specs))]
    if executor == "thread":
        payloads = [(task_fn, tracer, rank, spec, parent_id)
                    for rank, spec in enumerate(specs)]
        return get_shared_executor().map_tasks(
            _rank_span_entry, payloads, "thread", labels=labels)
    payloads = [(task_fn, tracer.epoch, rank, spec)
                for rank, spec in enumerate(specs)]
    gathered = get_shared_executor().map_tasks(
        _traced_process_rank, payloads, "process", labels=labels)
    out = []
    for metrics, span_dicts, rank in gathered:
        tracer.ingest(span_dicts, rank=rank, parent_id=parent_id)
        out.append(metrics)
    return out


def emit_records(records: Iterable[AlignmentRecord], target: TargetFormat,
                 writer: BufferedTextWriter, metrics: RankMetrics,
                 ) -> tuple[int, int]:
    """Drive parsed records through the user program into the writer.

    Returns ``(records_seen, objects_emitted)``.  No fine-grained timing
    happens here: rank tasks measure their total wall time and subtract
    the writer/reader-metered I/O to get compute seconds (see
    :func:`finish_rank_metrics`), which keeps the inner loop free of
    per-record timer calls.
    """
    if target.mode != "text":
        raise ConversionError(
            f"emit_records drives text targets; {target.name} is binary")
    seen = 0
    emitted = 0
    emit = target.emit
    write_line = writer.write_line
    for record in records:
        line = emit(record)
        seen += 1
        if line is not None:
            write_line(line)
            emitted += 1
    metrics.records += seen
    metrics.emitted += emitted
    return seen, emitted


def finish_rank_metrics(metrics: RankMetrics, t_start: float) -> RankMetrics:
    """Derive compute seconds as total wall time minus metered I/O."""
    wall = time.perf_counter() - t_start
    metrics.compute_seconds = max(0.0, wall - metrics.io_seconds)
    return metrics


def make_output_path(out_dir: str, stem: str, rank: int,
                     target: TargetFormat) -> str:
    """Standard part-file naming: ``<stem>.part<rank><ext>``."""
    return f"{out_dir}/{stem}.part{rank:04d}{target.extension}"


def bind_target(target: TargetFormat, header: SamHeader) -> TargetFormat:
    """Give header-aware plugins (BAM) their reference dictionary."""
    binder = getattr(target, "bind_header", None)
    if binder is not None:
        binder(header)
    return target
