"""Converter runtime scaffolding shared by the three converter instances.

The paper separates a *runtime system* (partitioning, buffering,
parallel execution, resource management) from the *user program* (the
per-record conversion function).  This module is the runtime system's
common machinery:

* :func:`execute_rank_tasks` — run one task per rank under the chosen
  executor (``simulate`` / ``thread`` / ``process``);
* :class:`ConversionResult` — what every converter returns: output
  paths, per-rank metrics (feeding the cluster model), record counts;
* :func:`emit_records` — the inner loop converting parsed alignment
  objects through a target plugin into a write buffer, with compute
  time metered separately from I/O.
"""

from __future__ import annotations

import os
import shutil
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConversionError, RuntimeLayerError
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord
from ..runtime.buffers import BufferedTextWriter
from ..runtime.executor import get_shared_executor
from ..runtime.metrics import RankMetrics
from ..runtime.tracing import Tracer, get_tracer
from .targets import TargetFormat

#: Executors accepted by the converters.
EXECUTORS = ("simulate", "thread", "process")


@dataclass(slots=True)
class ConversionResult:
    """Outcome of one conversion run.

    Attributes
    ----------
    target:
        Target format name.
    outputs:
        Paths of the produced part files, in rank order.
    rank_metrics:
        One :class:`RankMetrics` per rank (conversion phase only).
    preprocess_metrics:
        Metrics of the preprocessing phase, when the converter has one.
    records:
        Total records converted (after target-side skips this is the
        number *emitted*, tracked separately as ``emitted``).
    emitted:
        Total target objects written.
    wall_seconds:
        Real elapsed time of the run on this machine.
    """

    target: str
    outputs: list[str] = field(default_factory=list)
    rank_metrics: list[RankMetrics] = field(default_factory=list)
    preprocess_metrics: list[RankMetrics] = field(default_factory=list)
    records: int = 0
    emitted: int = 0
    wall_seconds: float = 0.0

    @property
    def nprocs(self) -> int:
        """Number of ranks that participated in conversion."""
        return len(self.rank_metrics)


def execute_rank_tasks(task_fn: Callable[[Any], RankMetrics],
                       specs: Sequence[Any],
                       executor: str = "simulate",
                       shards_per_rank: int = 1) -> list[RankMetrics]:
    """Run ``task_fn(spec)`` once per rank spec; return per-rank metrics.

    Executors
    ---------
    ``simulate``
        Ranks run one after another in this process.  Per-rank timings
        are undistorted by contention, which is what the simulated-
        cluster model needs; this is the default and what the benches
        use.
    ``thread``
        Ranks run on the shared persistent thread pool (real
        concurrency, shared memory), capped at ``os.cpu_count()``
        workers.
    ``process``
        Ranks run on the shared persistent process pool (true
        parallelism; *task_fn* and specs must be picklable).  Workers
        are forked where the platform supports it and spawned
        otherwise.

    Sharding
    --------
    With ``shards_per_rank > 1`` every spec that implements ``split(n)``
    is over-decomposed into up to *n* shards, which the shared pool
    pulls dynamically longest-first; per-shard results are folded back
    to per-rank results via each spec's ``merge_shards`` (an ordered
    reducer, so outputs stay byte-identical to the static run).  Specs
    without ``split`` — and calls where nothing decomposes — fall back
    to the static one-task-per-rank schedule.
    """
    if executor not in EXECUTORS:
        raise RuntimeLayerError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if not specs:
        raise RuntimeLayerError("no rank specs to execute")
    if shards_per_rank < 1:
        raise RuntimeLayerError(
            f"shards_per_rank must be >= 1, got {shards_per_rank}")
    tracer = get_tracer()
    groups = _shard_plan(specs, shards_per_rank)
    if groups is not None:
        return _execute_sharded(task_fn, specs, groups, executor, tracer)
    if tracer.enabled:
        return _execute_rank_tasks_traced(task_fn, specs, executor,
                                          tracer)
    if executor == "simulate" or len(specs) == 1:
        return [task_fn(spec) for spec in specs]
    labels = [f"rank {rank}" for rank in range(len(specs))]
    return get_shared_executor().map_tasks(task_fn, list(specs), executor,
                                           labels=labels)


def _shard_plan(specs: Sequence[Any], shards_per_rank: int,
                ) -> list[list[Any]] | None:
    """Split each spec into shards; ``None`` when nothing decomposes.

    Specs opt in by implementing ``split(n) -> list[spec]``; a spec may
    return ``[self]`` to decline (single record, binary target, ...).
    Returning ``None`` keeps undecomposable workloads — sort/histogram/
    flagstat specs, ``--shards 1`` — on the static path untouched.
    """
    if shards_per_rank <= 1:
        return None
    groups: list[list[Any]] = []
    decomposed = False
    for spec in specs:
        split = getattr(spec, "split", None)
        group = [spec] if split is None else split(shards_per_rank)
        if not group:
            raise RuntimeLayerError(
                f"split() of {type(spec).__name__} returned no shards")
        decomposed = decomposed or len(group) > 1
        groups.append(group)
    return groups if decomposed else None


def _cost_hint(spec: Any) -> float:
    """Relative size of a shard, for longest-first dispatch."""
    hint = getattr(spec, "cost_hint", None)
    return float(hint()) if hint is not None else 1.0


def _execute_sharded(task_fn: Callable[[Any], RankMetrics],
                     specs: Sequence[Any], groups: list[list[Any]],
                     executor: str, tracer: Tracer) -> list[RankMetrics]:
    """Run the over-decomposed schedule and reduce shards per rank.

    Shards of all ranks are flattened into one work list and dispatched
    longest-first; the shared pool's workers pull them dynamically, so
    a skewed rank's extra shards land on whichever workers are free.
    Results come back in flatten order, so the per-rank reduction sees
    shards in shard order — the ordered reducer that keeps concatenated
    outputs byte-identical.
    """
    entries = [(rank, shard_idx, shard)
               for rank, group in enumerate(groups)
               for shard_idx, shard in enumerate(group)]
    labels = [f"rank {rank} shard {shard_idx}"
              for rank, shard_idx, _ in entries]
    costs = [_cost_hint(shard) for _, _, shard in entries]
    parent_id = None
    if tracer.enabled:
        caller = tracer.current_span()
        parent_id = caller.span_id if caller is not None else None
    if executor == "simulate":
        if tracer.enabled:
            results = [_shard_span_call(task_fn, tracer, rank, shard_idx,
                                        shard, parent_id)
                       for rank, shard_idx, shard in entries]
        else:
            results = [task_fn(shard) for _, _, shard in entries]
    elif tracer.enabled and executor == "thread":
        payloads = [(task_fn, tracer, rank, shard_idx, shard, parent_id)
                    for rank, shard_idx, shard in entries]
        results = get_shared_executor().map_tasks(
            _shard_span_entry, payloads, "thread",
            labels=labels, costs=costs)
    elif tracer.enabled:
        payloads = [(task_fn, tracer.epoch, rank, shard_idx, shard)
                    for rank, shard_idx, shard in entries]
        gathered = get_shared_executor().map_tasks(
            _traced_process_shard, payloads, "process",
            labels=labels, costs=costs)
        results = []
        for result, span_dicts, rank in gathered:
            tracer.ingest(span_dicts, rank=rank, parent_id=parent_id)
            results.append(result)
    else:
        results = get_shared_executor().map_tasks(
            task_fn, [shard for _, _, shard in entries], executor,
            labels=labels, costs=costs)
    by_rank: list[list[Any]] = [[] for _ in specs]
    for (rank, _, _), result in zip(entries, results):
        by_rank[rank].append(result)
    out = []
    for spec, group, shard_results in zip(specs, groups, by_rank):
        if len(group) == 1:
            out.append(shard_results[0])
        else:
            out.append(spec.merge_shards(group, shard_results))
    return out


def merge_shard_outputs(out_path: str, shard_specs: Sequence[Any],
                        shard_metrics: Sequence[RankMetrics],
                        ) -> RankMetrics:
    """Ordered reducer: concatenate shard part files into *out_path*.

    Shard files are appended in shard order (shard 0 carries the header)
    and removed afterwards, so the rank's output file is byte-identical
    to the one an unsharded rank task would have written.  Returns the
    rank-level metrics fold of *shard_metrics*.
    """
    with open(out_path, "wb") as dst:
        for shard in shard_specs:
            with open(shard.out_path, "rb") as src:
                shutil.copyfileobj(src, dst)
            os.remove(shard.out_path)
    return RankMetrics.merge_shards(list(shard_metrics))


def _rank_span_call(task_fn: Callable[[Any], RankMetrics],
                    tracer: Tracer, rank: int, spec: Any,
                    parent_id: int | None) -> RankMetrics:
    """Run one rank task under a rank-tagged span of *tracer*.

    *parent_id* re-attaches the rank span to the launching span even
    when this runs on a pool thread with an empty span stack.
    """
    with tracer.activate(), tracer.rank_context(rank), \
            tracer.span("rank", "rank", rank=rank,
                        args={"task": task_fn.__name__},
                        parent_id=parent_id):
        return task_fn(spec)


def _rank_span_entry(payload: tuple) -> RankMetrics:
    """Single-argument adapter for pooled :func:`_rank_span_call`."""
    task_fn, tracer, rank, spec, parent_id = payload
    return _rank_span_call(task_fn, tracer, rank, spec, parent_id)


def _shard_span_call(task_fn: Callable[[Any], RankMetrics],
                     tracer: Tracer, rank: int, shard_idx: int,
                     spec: Any, parent_id: int | None) -> Any:
    """Run one shard task under a rank/shard-tagged span of *tracer*."""
    with tracer.activate(), tracer.rank_context(rank), \
            tracer.span("shard", "rank", rank=rank,
                        args={"task": task_fn.__name__, "rank": rank,
                              "shard": shard_idx},
                        parent_id=parent_id):
        return task_fn(spec)


def _shard_span_entry(payload: tuple) -> Any:
    """Single-argument adapter for pooled :func:`_shard_span_call`."""
    task_fn, tracer, rank, shard_idx, spec, parent_id = payload
    return _shard_span_call(task_fn, tracer, rank, shard_idx, spec,
                            parent_id)


def _traced_process_rank(payload: tuple) -> tuple:
    """Child-process entry: record spans locally, return them for
    gathering (module-level so the worker pool can pickle it)."""
    task_fn, epoch, rank, spec = payload
    child = Tracer(enabled=True, epoch=epoch)
    with child.activate(), child.rank_context(rank), \
            child.span("rank", "rank", rank=rank,
                       args={"task": task_fn.__name__}):
        metrics = task_fn(spec)
    return metrics, [s.to_dict() for s in child.spans()], rank


def _traced_process_shard(payload: tuple) -> tuple:
    """Child-process entry for one shard; spans tagged rank/shard."""
    task_fn, epoch, rank, shard_idx, spec = payload
    child = Tracer(enabled=True, epoch=epoch)
    with child.activate(), child.rank_context(rank), \
            child.span("shard", "rank", rank=rank,
                       args={"task": task_fn.__name__, "rank": rank,
                             "shard": shard_idx}):
        result = task_fn(spec)
    return result, [s.to_dict() for s in child.spans()], rank


def _execute_rank_tasks_traced(task_fn: Callable[[Any], RankMetrics],
                               specs: Sequence[Any], executor: str,
                               tracer: Tracer) -> list[RankMetrics]:
    """Traced variant of :func:`execute_rank_tasks` (static schedule).

    Simulate/thread ranks record straight into the shared tracer (its
    span stack is per-thread); process ranks record into a child tracer
    sharing the parent epoch and their spans are gathered to rank 0 via
    :meth:`Tracer.ingest`.
    """
    caller = tracer.current_span()
    parent_id = caller.span_id if caller is not None else None
    if executor == "simulate" or len(specs) == 1:
        return [_rank_span_call(task_fn, tracer, rank, spec, parent_id)
                for rank, spec in enumerate(specs)]
    labels = [f"rank {rank}" for rank in range(len(specs))]
    if executor == "thread":
        payloads = [(task_fn, tracer, rank, spec, parent_id)
                    for rank, spec in enumerate(specs)]
        return get_shared_executor().map_tasks(
            _rank_span_entry, payloads, "thread", labels=labels)
    payloads = [(task_fn, tracer.epoch, rank, spec)
                for rank, spec in enumerate(specs)]
    gathered = get_shared_executor().map_tasks(
        _traced_process_rank, payloads, "process", labels=labels)
    out = []
    for metrics, span_dicts, rank in gathered:
        tracer.ingest(span_dicts, rank=rank, parent_id=parent_id)
        out.append(metrics)
    return out


def emit_records(records: Iterable[AlignmentRecord], target: TargetFormat,
                 writer: BufferedTextWriter, metrics: RankMetrics,
                 ) -> tuple[int, int]:
    """Drive parsed records through the user program into the writer.

    Returns ``(records_seen, objects_emitted)``.  No fine-grained timing
    happens here: rank tasks measure their total wall time and subtract
    the writer/reader-metered I/O to get compute seconds (see
    :func:`finish_rank_metrics`), which keeps the inner loop free of
    per-record timer calls.
    """
    if target.mode != "text":
        raise ConversionError(
            f"emit_records drives text targets; {target.name} is binary")
    seen = 0
    emitted = 0
    emit = target.emit
    write_line = writer.write_line
    for record in records:
        line = emit(record)
        seen += 1
        if line is not None:
            write_line(line)
            emitted += 1
    metrics.records += seen
    metrics.emitted += emitted
    return seen, emitted


def finish_rank_metrics(metrics: RankMetrics, t_start: float) -> RankMetrics:
    """Derive compute seconds as total wall time minus metered I/O."""
    wall = time.perf_counter() - t_start
    metrics.compute_seconds = max(0.0, wall - metrics.io_seconds)
    return metrics


def make_output_path(out_dir: str, stem: str, rank: int,
                     target: TargetFormat) -> str:
    """Standard part-file naming: ``<stem>.part<rank><ext>``."""
    return f"{out_dir}/{stem}.part{rank:04d}{target.extension}"


def bind_target(target: TargetFormat, header: SamHeader) -> TargetFormat:
    """Give header-aware plugins (BAM) their reference dictionary."""
    binder = getattr(target, "bind_header", None)
    if binder is not None:
        binder(header)
    return target
