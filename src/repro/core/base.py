"""Converter runtime scaffolding shared by the three converter instances.

The paper separates a *runtime system* (partitioning, buffering,
parallel execution, resource management) from the *user program* (the
per-record conversion function).  This module is the runtime system's
common machinery:

* :func:`execute_rank_tasks` — run one task per rank under the chosen
  executor (``simulate`` / ``thread`` / ``process``);
* :class:`ConversionResult` — what every converter returns: output
  paths, per-rank metrics (feeding the cluster model), record counts;
* :func:`emit_records` — the inner loop converting parsed alignment
  objects through a target plugin into a write buffer, with compute
  time metered separately from I/O.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConversionError, RuntimeLayerError
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord
from ..runtime.buffers import BufferedTextWriter
from ..runtime.metrics import RankMetrics
from ..runtime.tracing import Tracer, get_tracer
from .targets import TargetFormat

#: Executors accepted by the converters.
EXECUTORS = ("simulate", "thread", "process")


@dataclass(slots=True)
class ConversionResult:
    """Outcome of one conversion run.

    Attributes
    ----------
    target:
        Target format name.
    outputs:
        Paths of the produced part files, in rank order.
    rank_metrics:
        One :class:`RankMetrics` per rank (conversion phase only).
    preprocess_metrics:
        Metrics of the preprocessing phase, when the converter has one.
    records:
        Total records converted (after target-side skips this is the
        number *emitted*, tracked separately as ``emitted``).
    emitted:
        Total target objects written.
    wall_seconds:
        Real elapsed time of the run on this machine.
    """

    target: str
    outputs: list[str] = field(default_factory=list)
    rank_metrics: list[RankMetrics] = field(default_factory=list)
    preprocess_metrics: list[RankMetrics] = field(default_factory=list)
    records: int = 0
    emitted: int = 0
    wall_seconds: float = 0.0

    @property
    def nprocs(self) -> int:
        """Number of ranks that participated in conversion."""
        return len(self.rank_metrics)


def execute_rank_tasks(task_fn: Callable[[Any], RankMetrics],
                       specs: Sequence[Any],
                       executor: str = "simulate") -> list[RankMetrics]:
    """Run ``task_fn(spec)`` once per rank spec; return per-rank metrics.

    Executors
    ---------
    ``simulate``
        Ranks run one after another in this process.  Per-rank timings
        are undistorted by contention, which is what the simulated-
        cluster model needs; this is the default and what the benches
        use.
    ``thread``
        Ranks run on a thread pool (real concurrency, shared memory).
    ``process``
        Ranks run in forked worker processes (true parallelism;
        *task_fn* and specs must be picklable).
    """
    if executor not in EXECUTORS:
        raise RuntimeLayerError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if not specs:
        raise RuntimeLayerError("no rank specs to execute")
    tracer = get_tracer()
    if tracer.enabled:
        return _execute_rank_tasks_traced(task_fn, specs, executor,
                                          tracer)
    if executor == "simulate" or len(specs) == 1:
        return [task_fn(spec) for spec in specs]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=len(specs)) as pool:
            return list(pool.map(task_fn, specs))
    ctx = mp.get_context("fork")
    with ctx.Pool(processes=min(len(specs), mp.cpu_count())) as pool:
        return pool.map(task_fn, specs)


def _rank_span_call(task_fn: Callable[[Any], RankMetrics],
                    tracer: Tracer, rank: int, spec: Any,
                    parent_id: int | None) -> RankMetrics:
    """Run one rank task under a rank-tagged span of *tracer*.

    *parent_id* re-attaches the rank span to the launching span even
    when this runs on a pool thread with an empty span stack.
    """
    with tracer.activate(), tracer.rank_context(rank), \
            tracer.span("rank", "rank", rank=rank,
                        args={"task": task_fn.__name__},
                        parent_id=parent_id):
        return task_fn(spec)


def _traced_process_rank(payload: tuple) -> tuple:
    """Child-process entry: record spans locally, return them for
    gathering (module-level so the fork pool can pickle it)."""
    task_fn, epoch, rank, spec = payload
    child = Tracer(enabled=True, epoch=epoch)
    with child.activate(), child.rank_context(rank), \
            child.span("rank", "rank", rank=rank,
                       args={"task": task_fn.__name__}):
        metrics = task_fn(spec)
    return metrics, [s.to_dict() for s in child.spans()], rank


def _execute_rank_tasks_traced(task_fn: Callable[[Any], RankMetrics],
                               specs: Sequence[Any], executor: str,
                               tracer: Tracer) -> list[RankMetrics]:
    """Traced variant of :func:`execute_rank_tasks`.

    Simulate/thread ranks record straight into the shared tracer (its
    span stack is per-thread); process ranks record into a child tracer
    sharing the parent epoch and their spans are gathered to rank 0 via
    :meth:`Tracer.ingest`.
    """
    caller = tracer.current_span()
    parent_id = caller.span_id if caller is not None else None
    if executor == "simulate" or len(specs) == 1:
        return [_rank_span_call(task_fn, tracer, rank, spec, parent_id)
                for rank, spec in enumerate(specs)]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=len(specs)) as pool:
            futures = [pool.submit(_rank_span_call, task_fn, tracer,
                                   rank, spec, parent_id)
                       for rank, spec in enumerate(specs)]
            return [future.result() for future in futures]
    ctx = mp.get_context("fork")
    payloads = [(task_fn, tracer.epoch, rank, spec)
                for rank, spec in enumerate(specs)]
    with ctx.Pool(processes=min(len(specs), mp.cpu_count())) as pool:
        gathered = pool.map(_traced_process_rank, payloads)
    out = []
    for metrics, span_dicts, rank in gathered:
        tracer.ingest(span_dicts, rank=rank, parent_id=parent_id)
        out.append(metrics)
    return out


def emit_records(records: Iterable[AlignmentRecord], target: TargetFormat,
                 writer: BufferedTextWriter, metrics: RankMetrics,
                 ) -> tuple[int, int]:
    """Drive parsed records through the user program into the writer.

    Returns ``(records_seen, objects_emitted)``.  No fine-grained timing
    happens here: rank tasks measure their total wall time and subtract
    the writer/reader-metered I/O to get compute seconds (see
    :func:`finish_rank_metrics`), which keeps the inner loop free of
    per-record timer calls.
    """
    if target.mode != "text":
        raise ConversionError(
            f"emit_records drives text targets; {target.name} is binary")
    seen = 0
    emitted = 0
    emit = target.emit
    write_line = writer.write_line
    for record in records:
        line = emit(record)
        seen += 1
        if line is not None:
            write_line(line)
            emitted += 1
    metrics.records += seen
    metrics.emitted += emitted
    return seen, emitted


def finish_rank_metrics(metrics: RankMetrics, t_start: float) -> RankMetrics:
    """Derive compute seconds as total wall time minus metered I/O."""
    wall = time.perf_counter() - t_start
    metrics.compute_seconds = max(0.0, wall - metrics.io_seconds)
    return metrics


def make_output_path(out_dir: str, stem: str, rank: int,
                     target: TargetFormat) -> str:
    """Standard part-file naming: ``<stem>.part<rank><ext>``."""
    return f"{out_dir}/{stem}.part{rank:04d}{target.extension}"


def bind_target(target: TargetFormat, header: SamHeader) -> TargetFormat:
    """Give header-aware plugins (BAM) their reference dictionary."""
    binder = getattr(target, "bind_header", None)
    if binder is not None:
        binder(header)
    return target
