"""Record filters: flag/MAPQ-conditioned conversion.

Another of the paper's "more partial conversion types": besides
selecting *where* (a region), users routinely select *which* records —
primary only, mapped only, a MAPQ floor, flag masks (the semantics of
``samtools view -f/-F/-q``).  A :class:`RecordFilter` is a small
picklable value object converters can apply on every rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConversionError
from ..formats.flags import MAX_FLAG, Flag
from ..formats.record import AlignmentRecord


@dataclass(frozen=True, slots=True)
class RecordFilter:
    """Predicate over alignment records.

    Attributes
    ----------
    require_flags:
        Every bit set here must be set in the record (``-f``).
    exclude_flags:
        No bit set here may be set in the record (``-F``).
    min_mapq:
        Minimum mapping quality (``-q``); unmapped records have MAPQ 0
        and are excluded by any positive floor unless also mapped.
    primary_only:
        Drop secondary and supplementary lines.
    mapped_only:
        Drop unmapped records.
    """

    require_flags: int = 0
    exclude_flags: int = 0
    min_mapq: int = 0
    primary_only: bool = False
    mapped_only: bool = False

    def __post_init__(self) -> None:
        for label, value in (("require_flags", self.require_flags),
                             ("exclude_flags", self.exclude_flags)):
            if not 0 <= value <= MAX_FLAG:
                raise ConversionError(
                    f"{label} {value:#x} outside the 12 defined flag "
                    f"bits")
        if not 0 <= self.min_mapq <= 255:
            raise ConversionError(
                f"min_mapq {self.min_mapq} outside [0, 255]")
        if self.require_flags & self.exclude_flags:
            raise ConversionError(
                "require_flags and exclude_flags overlap: no record "
                "can match")

    def matches(self, record: AlignmentRecord) -> bool:
        """True when the record passes every condition."""
        return self.matches_flag_mapq(record.flag, record.mapq)

    def matches_flag_mapq(self, flag: int, mapq: int) -> bool:
        """:meth:`matches` from FLAG and MAPQ alone.

        Every condition a filter can express reads only these two
        fields, so the batched fastpaths filter before decoding (or
        even materializing) the rest of the record.
        """
        if flag & self.require_flags != self.require_flags:
            return False
        if flag & self.exclude_flags:
            return False
        if self.primary_only and flag & (Flag.SECONDARY
                                         | Flag.SUPPLEMENTARY):
            return False
        if self.mapped_only and flag & Flag.UNMAPPED:
            return False
        if mapq < self.min_mapq:
            return False
        return True

    @property
    def is_noop(self) -> bool:
        """True when the filter accepts everything."""
        return (self.require_flags == 0 and self.exclude_flags == 0
                and self.min_mapq == 0 and not self.primary_only
                and not self.mapped_only)

    def apply(self, records):
        """Lazily filter an iterable of records."""
        if self.is_noop:
            yield from records
            return
        for record in records:
            if self.matches(record):
                yield record


#: Filter accepting every record (the converters' default).
ACCEPT_ALL = RecordFilter()


def parse_filter_expr(expr: str) -> RecordFilter:
    """Parse a compact CLI filter expression.

    Comma-separated clauses: ``f=<int>`` (require flags), ``F=<int>``
    (exclude flags), ``q=<int>`` (min MAPQ), ``primary``, ``mapped``.
    Flag values accept decimal or 0x-prefixed hex.  Example:
    ``"q=30,F=0x400,primary"``.
    """
    require = exclude = 0
    mapq = 0
    primary = mapped = False
    for clause in expr.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if clause == "primary":
            primary = True
        elif clause == "mapped":
            mapped = True
        elif clause.startswith("f="):
            require = int(clause[2:], 0)
        elif clause.startswith("F="):
            exclude = int(clause[2:], 0)
        elif clause.startswith("q="):
            mapq = int(clause[2:], 0)
        else:
            raise ConversionError(
                f"unknown filter clause {clause!r} (want f=, F=, q=, "
                f"primary, mapped)")
    return RecordFilter(require, exclude, mapq, primary, mapped)
