"""The preprocessing-optimized SAM format converter (§III-C, Fig. 5).

Combines the two earlier strategies: because SAM *can* be partitioned
with Algorithm 1, the BAMX-producing preprocessing phase runs in
parallel — each of M preprocessing ranks converts its SAM partition into
its own BAMX file (plus BAIX index).  The subsequent conversion phase is
the BAM converter's parallel phase run over one BAMX file at a time
with N ranks, yielding M x N target part files in total.

Benefits (per the paper): the preprocessing cost is itself parallelized;
conversion reads compact, perfectly aligned binary records instead of
re-parsing text; and the regular layout improves I/O scalability.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace

from ..errors import ConversionError
from ..formats.baix import BaixIndex, default_index_path
from ..formats.bamx import BamxWriter, plan_layout
from ..formats.batch import DEFAULT_BATCH_SIZE, parse_sam_lines
from ..formats.header import SamHeader
from ..runtime.autotune import AutoTuner
from ..runtime.buffers import RangeLineReader
from ..runtime.metrics import RankMetrics
from ..runtime.partition import partition_bytes_source
from ..runtime.tracing import get_tracer
from .base import ConversionResult, ensure_tuner, execute_rank_tasks, \
    finish_rank_metrics, record_tuning, resolve_tuning, validate_knob
from .bam_converter import BamConverter
from .sam_converter import partition_alignments, scan_header


@dataclass(frozen=True, slots=True)
class PreprocessSpec:
    """One preprocessing rank: SAM byte range -> one BAMX/BAIX pair."""

    sam_path: str
    start: int
    end: int
    bamx_path: str
    header_text: str
    read_chunk: int
    batch_size: int = DEFAULT_BATCH_SIZE
    parse_only: bool = False
    store_format: str = "bamx"

    def cost_hint(self) -> float:
        """Relative shard size: bytes of SAM text to parse."""
        return float(self.end - self.start)

    def split(self, n: int) -> "list[PreprocessSpec]":
        """Over-decompose this rank's byte range into <= *n* shards.

        The BAMX layout is planned over *all* of the rank's records, so
        shards cannot write independent store fragments; they run the
        parse phase only (returning their record lists) and
        :meth:`merge_shards` concatenates the records in shard order
        before running the layout/write/index phase exactly as the
        unsharded task would — byte-identical BAMX/BAIX output.
        """
        if n <= 1 or self.end - self.start <= 1:
            return [self]
        length = self.end - self.start
        with open(self.sam_path, "rb") as fh:
            def read_at(offset: int, size: int) -> bytes:
                fh.seek(self.start + offset)
                return fh.read(size)
            parts = partition_bytes_source(read_at, length, n)
        parts = [p for p in parts if p.length > 0]
        if len(parts) <= 1:
            return [self]
        return [replace(self,
                        start=self.start + p.start,
                        end=self.start + p.end,
                        parse_only=True)
                for p in parts]

    def merge_shards(self, shard_specs: "list[PreprocessSpec]",
                     shard_results: list[tuple]) -> RankMetrics:
        """Reduce parse-only shard results to one BAMX/BAIX pair."""
        parse_metrics = RankMetrics.merge_shards(
            [metrics for metrics, _ in shard_results])
        records = [record for _, shard_records in shard_results
                   for record in shard_records]
        t0 = time.perf_counter()
        write_metrics = RankMetrics()
        _write_rank_store(self, records, write_metrics)
        finish_rank_metrics(write_metrics, t0)
        return parse_metrics.merge(write_metrics)


def _parse_rank_records(spec: PreprocessSpec,
                        metrics: RankMetrics) -> list:
    """Parse the spec's SAM byte range into alignment records."""
    reader = RangeLineReader(spec.sam_path, spec.start, spec.end,
                             chunk_size=spec.read_chunk, metrics=metrics)
    records: list = []
    with get_tracer().span("parse", "samp",
                           args={"batch_size": spec.batch_size}):
        for lines in reader.iter_batches(spec.batch_size):
            records.extend(parse_sam_lines(lines))
    return records


def _write_rank_store(spec: PreprocessSpec, records: list,
                      metrics: RankMetrics) -> None:
    """Plan the layout over *records* and write the BAMX/BAIX pair."""
    tracer = get_tracer()
    header = SamHeader.from_text(spec.header_text)
    layout = plan_layout(records)
    if spec.store_format == "bamc":
        from ..formats.bamc import BamcWriter
        writer_ctx = BamcWriter(spec.bamx_path, header, layout,
                                slab_records=spec.batch_size)
    else:
        writer_ctx = BamxWriter(spec.bamx_path, header, layout)
    with tracer.span("write", "samp", args={"records": len(records)}), \
            writer_ctx as writer:
        index_entries = []
        with tracer.span("batch.encode", "samp",
                         args={"batch_size": spec.batch_size}):
            for off in range(0, len(records), spec.batch_size):
                chunk = records[off:off + spec.batch_size]
                first = writer.write_batch(chunk)
                for j, record in enumerate(chunk):
                    if record.rname != "*" and record.pos >= 0:
                        index_entries.append((first + j, record))
    baix_path = default_index_path(spec.bamx_path)
    with tracer.span("index", "samp",
                     args={"entries": len(index_entries)}):
        BaixIndex.build(index_entries, header).save(baix_path)
        from ..formats.baix2 import BaixOverlapIndex
        from ..formats.baix2 import default_index_path as baix2_path
        BaixOverlapIndex.build(index_entries, header).save(
            baix2_path(spec.bamx_path))
    metrics.bytes_written += (os.path.getsize(spec.bamx_path)
                              + os.path.getsize(baix_path))


def _preprocess_rank_task(spec: PreprocessSpec):
    """Parse one SAM partition and write it as an aligned BAMX file.

    The rank's records are held in memory between the layout-planning
    pass and the write pass; with the even partitioning of Algorithm 1
    each rank holds ~1/M of the dataset, which is the same working-set
    assumption the paper's in-memory buffers make.

    A ``parse_only`` shard stops after the parse phase and returns
    ``(metrics, records)`` for the driver-side reduction
    (:meth:`PreprocessSpec.merge_shards`).
    """
    t0 = time.perf_counter()
    metrics = RankMetrics()
    records = _parse_rank_records(spec, metrics)
    metrics.records = len(records)
    metrics.emitted = len(records)
    if spec.parse_only:
        return finish_rank_metrics(metrics, t0), records
    _write_rank_store(spec, records, metrics)
    return finish_rank_metrics(metrics, t0)


class PreprocSamConverter:
    """SAM -> * converter with a *parallel* BAMX preprocessing phase."""

    def __init__(self, read_chunk: int = 4 << 20,
                 batch_size: int | str = DEFAULT_BATCH_SIZE,
                 pipeline: str = "batch",
                 shards_per_rank: int | str = 1,
                 store_format: str = "bamx",
                 tuner: AutoTuner | None = None) -> None:
        from ..formats.store import STORE_FORMATS
        if store_format not in STORE_FORMATS:
            raise ConversionError(
                f"unknown store format {store_format!r}; choose one of "
                f"{STORE_FORMATS}")
        self.read_chunk = read_chunk
        self.batch_size = validate_knob(batch_size, "batch_size")
        self.pipeline = pipeline
        self.shards_per_rank = validate_knob(shards_per_rank,
                                             "shards_per_rank")
        self.store_format = store_format
        self.tuner = ensure_tuner(tuner, self.shards_per_rank,
                                  self.batch_size)

    def preprocess(self, sam_path: str | os.PathLike[str],
                   work_dir: str | os.PathLike[str], nprocs: int = 1,
                   executor: str = "simulate",
                   ) -> tuple[list[str], list[RankMetrics]]:
        """Parallel preprocessing: M ranks, M BAMX/BAIX file pairs.

        Returns the BAMX paths (rank order) and per-rank metrics.
        """
        if nprocs < 1:
            raise ConversionError(f"nprocs {nprocs} must be >= 1")
        sam_path = os.fspath(sam_path)
        work_dir = os.fspath(work_dir)
        os.makedirs(work_dir, exist_ok=True)
        tracer = get_tracer()
        with tracer.span("preprocess", "samp",
                         args={"input": os.path.basename(sam_path),
                               "nprocs": nprocs}):
            with tracer.span("partition", "samp"):
                header, header_end = scan_header(sam_path)
                partitions = partition_alignments(sam_path, nprocs,
                                                  header_end)
            stem = os.path.splitext(os.path.basename(sam_path))[0]
            ext = ".bamc" if self.store_format == "bamc" else ".bamx"
            shards, batch_size, tuning = resolve_tuning(
                self.tuner, target="preprocess",
                store_format=self.store_format, pipeline="parse",
                total_units=os.path.getsize(sam_path) - header_end,
                nprocs=nprocs, shards=self.shards_per_rank,
                batch_size=self.batch_size,
                default_batch=DEFAULT_BATCH_SIZE)
            specs = [
                PreprocessSpec(
                    sam_path=sam_path,
                    start=p.start,
                    end=p.end,
                    bamx_path=os.path.join(
                        work_dir, f"{stem}.part{p.rank:04d}{ext}"),
                    header_text=header.to_text(),
                    read_chunk=self.read_chunk,
                    batch_size=batch_size,
                    store_format=self.store_format,
                )
                for p in partitions
            ]
            metrics = execute_rank_tasks(
                _preprocess_rank_task, specs, executor,
                shards_per_rank=shards, tuning=tuning)
            record_tuning(tracer, tuning)
        return [s.bamx_path for s in specs], metrics

    def convert(self, bamx_paths: list[str], target: str,
                out_dir: str | os.PathLike[str], nprocs: int = 1,
                executor: str = "simulate") -> ConversionResult:
        """Parallel conversion phase over the preprocessed BAMX files.

        Processes one BAMX file at a time with *nprocs* ranks (the
        paper's N), so M preprocessing ranks and N conversion ranks
        yield M x N target files.
        """
        if not bamx_paths:
            raise ConversionError("no BAMX files to convert")
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        t0 = time.perf_counter()
        bam_converter = BamConverter(batch_size=self.batch_size,
                                     pipeline=self.pipeline,
                                     shards_per_rank=self.shards_per_rank,
                                     store_format=self.store_format,
                                     tuner=self.tuner)
        outputs: list[str] = []
        # Rank r's total work is the sum of its share of every BAMX file,
        # matching the paper's one-file-at-a-time schedule.
        combined: list[RankMetrics] = [RankMetrics() for _ in range(nprocs)]
        records = 0
        emitted = 0
        for bamx_path in bamx_paths:
            part = bam_converter.convert(bamx_path, target, out_dir,
                                         nprocs, executor)
            outputs.extend(part.outputs)
            records += part.records
            emitted += part.emitted
            for rank in range(nprocs):
                combined[rank] = combined[rank].merge(
                    part.rank_metrics[rank])
        return ConversionResult(
            target=target,
            outputs=outputs,
            rank_metrics=combined,
            records=records,
            emitted=emitted,
            wall_seconds=time.perf_counter() - t0,
        )

    def convert_end_to_end(self, sam_path: str | os.PathLike[str],
                           target: str, work_dir: str | os.PathLike[str],
                           out_dir: str | os.PathLike[str],
                           preprocess_procs: int = 1,
                           convert_procs: int = 1,
                           executor: str = "simulate") -> ConversionResult:
        """Preprocess then convert; preprocessing metrics are attached to
        the result's ``preprocess_metrics``."""
        bamx_paths, pre_metrics = self.preprocess(
            sam_path, work_dir, preprocess_procs, executor)
        result = self.convert(bamx_paths, target, out_dir, convert_procs,
                              executor)
        result.preprocess_metrics = pre_metrics
        return result
