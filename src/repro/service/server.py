"""The conversion service: in-process façade, daemon, and client.

:class:`ConversionService` wires the worker pool, the artifact cache
and the existing converters into one long-lived object.  Submitting a
job returns immediately; the scheduler runs it on a worker thread.
BAM inputs route their sequential preprocessing through the
content-addressed cache, so repeated full or partial-region
conversions of the same input skip the preprocessing phase entirely —
the warm path is an O(1) cache lookup plus the BAIX binary search.

:class:`ServiceDaemon` exposes the façade over a local unix socket
and/or a TCP listener through the async gateway subsystem
(:mod:`repro.service.gateway`): transport, session, dispatch and
admission-control layers multiplexing many concurrent submitters
without blocking each other.  :class:`ServiceClient` is the matching
blocking client used by the ``repro submit``/``status``/``cancel``
subcommands; it speaks either transport, retries its initial connect
with bounded backoff, and long-polls ``wait`` so thousands of waiters
do not hammer the daemon.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any

from ..core import BamConverter, SamConverter, parse_filter_expr
from ..core.base import ConversionResult
from ..errors import JobNotFoundError, ServiceError, \
    ServiceOverloadedError
from ..formats.baix import default_index_path
from ..formats.store import store_extension
from ..runtime.autotune import AUTO, AutoTuner, CostModel
from ..runtime.metrics import ServiceMetrics
from . import journal as journal_mod
from . import protocol
from .cache import ArtifactCache, CacheEntry
from .gateway import GatewayConfig, GatewayServer
from .jobs import Job, seed_job_counter
from .journal import JobJournal
from .scheduler import WorkerPool

#: Job kinds the service runner dispatches on.
JOB_KINDS = ("convert", "region", "preprocess")


def _parse_knob(value: Any, name: str) -> int | str:
    """Validate a job's ``shards``/``batch_size`` knob.

    Accepts a positive int (or its string form) or ``"auto"``; anything
    else raises :class:`~repro.errors.ServiceError` naming the bad
    value — submitters get a clear rejection instead of a worker-side
    ``int()`` traceback.
    """
    if isinstance(value, str):
        if value.strip().lower() == AUTO:
            return AUTO
        try:
            value = int(value)
        except ValueError:
            raise ServiceError(
                f"invalid {name} value {value!r}: expected a positive "
                f"integer or 'auto'") from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            f"invalid {name} value {value!r}: expected a positive "
            f"integer or 'auto'")
    if value < 1:
        raise ServiceError(
            f"invalid {name} value {value}: must be >= 1 (or 'auto')")
    return value


def _result_dict(result: ConversionResult,
                 cache_state: str | None) -> dict[str, Any]:
    """Shrink a ConversionResult to the JSON-safe job result."""
    return {
        "target": result.target,
        "outputs": result.outputs,
        "records": result.records,
        "emitted": result.emitted,
        "nprocs": result.nprocs,
        "wall_seconds": result.wall_seconds,
        "cache": cache_state,
    }


class ConversionService:
    """Long-lived conversion job service (in-process façade).

    Parameters
    ----------
    work_dir:
        Root for service state; the artifact cache lives in
        ``<work_dir>/cache`` unless *cache_dir* overrides it.
    workers:
        Worker threads draining the job queue.
    cache_max_bytes:
        LRU size cap for the artifact cache (``None`` = unbounded).
    shards_per_rank:
        Default over-decomposition factor for converter jobs; a job's
        ``shards`` parameter overrides it, and either may be ``"auto"``
        to let the shared cost model pick per job.  All jobs share one
        process-global :class:`~repro.runtime.executor.SharedExecutor`
        — no per-job pool forking.
    cost_model_path:
        Where the persistent autotune cost model lives; defaults to
        ``<work_dir>/cost_model.json``.  One
        :class:`~repro.runtime.autotune.AutoTuner` wraps it for the
        whole service, so every job — tuned or manual — feeds the model
        and ``autotune_*`` counters appear in ``repro status
        --metrics``.
    journal_path:
        Optional write-ahead job journal file.  When set, every
        submission and state transition is logged durably, and this
        constructor *replays* an existing journal: jobs that were
        QUEUED or RUNNING when the previous process died are re-queued
        under their original ids (an interrupted RUNNING attempt
        counts against ``max_retries``), finished jobs stay queryable,
        and the job-id counter is seeded past the journal's high-water
        mark so new ids never collide with recovered ones.
    journal_fsync:
        Journal durability policy (``always``/``interval``/``never``),
        see :data:`repro.service.journal.FSYNC_POLICIES`.
    cache_verify:
        Artifact digest verification policy passed to
        :class:`ArtifactCache` (``always``/``never`` or a sample
        probability).
    """

    def __init__(self, work_dir: str | os.PathLike[str],
                 workers: int = 2,
                 cache_dir: str | os.PathLike[str] | None = None,
                 cache_max_bytes: int | None = None,
                 metrics: ServiceMetrics | None = None,
                 shards_per_rank: int | str = 1,
                 journal_path: str | os.PathLike[str] | None = None,
                 journal_fsync: str = "interval",
                 cache_verify: str | float = "always",
                 cost_model_path: str | os.PathLike[str] | None = None,
                 ) -> None:
        from ..runtime.executor import shared_executor_stats
        self.work_dir = os.fspath(work_dir)
        os.makedirs(self.work_dir, exist_ok=True)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.shards_per_rank = _parse_knob(shards_per_rank,
                                           "shards_per_rank")
        self.tuner = AutoTuner(
            CostModel(cost_model_path if cost_model_path is not None
                      else os.path.join(self.work_dir,
                                        "cost_model.json")),
            metrics=self.metrics)
        self.metrics.set_gauge("autotune_model_keys",
                               len(self.tuner.model))
        self.cache = ArtifactCache(
            cache_dir if cache_dir is not None
            else os.path.join(self.work_dir, "cache"),
            max_bytes=cache_max_bytes, metrics=self.metrics,
            verify=cache_verify)
        self.journal: JobJournal | None = None
        recovered: list[dict] = []
        if journal_path is not None:
            specs, stats = journal_mod.replay(journal_path)
            self.metrics.inc("journal_replayed_records",
                             stats["records"])
            self.metrics.inc("journal_bad_lines", stats["bad_lines"])
            # Continue the journal's plain id sequence: recovered and
            # new job ids share one collision-free numbering that
            # clients observe across restarts.
            seed_job_counter(journal_mod.high_water_mark(specs),
                             nonce="")
            self.journal = JobJournal(journal_path,
                                      fsync=journal_fsync)
            recovered = list(specs.values())
        self.pool = WorkerPool(self._run_job, workers=workers,
                               metrics=self.metrics,
                               stats_source=shared_executor_stats,
                               journal=self.journal)
        if recovered:
            counts = self.pool.recover(recovered)
            # The replayed log has served its purpose; snapshotting it
            # now bounds growth across restart cycles.  Workers are
            # already draining recovered jobs, so the snapshot must go
            # through the pool's lock-ordered compaction.
            self.pool.compact_journal(force=True)
            self.metrics.set_gauge("journal_recovered_jobs",
                                   counts["requeued"] + counts["rerun"])

    # -- submission API ---------------------------------------------

    def submit(self, kind: str, params: dict[str, Any],
               priority: int = 0, timeout: float | None = None,
               max_retries: int = 0, backoff: float = 0.1) -> Job:
        """Validate and enqueue one job; returns the queued job."""
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r}; choose from {JOB_KINDS}")
        if "input" not in params:
            raise ServiceError(f"{kind} job needs an 'input' parameter")
        if kind in ("convert", "region"):
            for field in ("target", "out_dir"):
                if field not in params:
                    raise ServiceError(
                        f"{kind} job needs a {field!r} parameter")
        if kind == "region" and "region" not in params:
            raise ServiceError("region job needs a 'region' parameter")
        # Reject malformed tuning knobs at the door — a bad value must
        # fail the submission, not a worker thread minutes later.
        for knob in ("shards", "batch_size"):
            if knob in params:
                _parse_knob(params[knob], knob)
        job = Job(kind=kind, params=dict(params), priority=priority,
                  timeout=timeout, max_retries=max_retries,
                  backoff=backoff)
        return self.pool.submit(job)

    def status(self, job_id: str | None = None) -> Any:
        """One job snapshot, or all of them in submission order."""
        if job_id is not None:
            return self.pool.get(job_id).to_dict()
        return [job.to_dict() for job in self.pool.jobs()]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job (see :meth:`WorkerPool.cancel`)."""
        return self.pool.cancel(job_id)

    def wait(self, job_id: str,
             timeout: float | None = None) -> dict[str, Any]:
        """Block until the job is terminal; returns its snapshot."""
        job = self.pool.get(job_id)
        job.wait(timeout)
        return job.to_dict()

    def trace(self, job_id: str) -> list[dict[str, Any]]:
        """Span dicts recorded for a job (one tree per attempt)."""
        return list(self.pool.get(job_id).trace)

    def metrics_snapshot(self) -> dict[str, Any]:
        """Current service counters/gauges/timers."""
        return self.metrics.snapshot()

    def close(self) -> None:
        """Stop the worker pool (queued jobs are left unrun; with a
        journal they are recovered by the next incarnation)."""
        self.pool.shutdown()
        if self.journal is not None:
            self.journal.close()

    # -- the job runner (executes on worker threads) -----------------

    def _run_job(self, job: Job) -> dict[str, Any]:
        params = job.params
        record_filter = parse_filter_expr(params["filter"]) \
            if params.get("filter") else None
        nprocs = int(params.get("nprocs", 1))
        executor = params.get("executor", "simulate")
        # Journal-recovered jobs bypass submit(), so knobs are
        # re-validated here with the same friendly errors.
        knobs: dict[str, Any] = {
            "shards_per_rank": _parse_knob(
                params.get("shards", self.shards_per_rank), "shards"),
            "tuner": self.tuner,
        }
        if "batch_size" in params:
            knobs["batch_size"] = _parse_knob(params["batch_size"],
                                              "batch_size")
        source = os.fspath(params["input"])
        lowered = source.lower()
        if job.kind == "preprocess":
            entry, hit = self._preprocessed(
                source, compress=bool(params.get("compress", False)),
                store_format=params.get("store_format", "bamx"))
            return {"artifacts": entry.files(),
                    "cache": "hit" if hit else "miss"}
        if job.kind == "region":
            store_path, baix_path, cache_state = self._store_for(
                source, params)
            result = BamConverter(**knobs).convert_region(
                store_path, baix_path, params["region"],
                params["target"], params["out_dir"], nprocs, executor,
                mode=params.get("mode", "start"),
                record_filter=record_filter)
            self._note_fallbacks(result)
            return _result_dict(result, cache_state)
        # kind == "convert"
        if lowered.endswith(".sam"):
            result = SamConverter(**knobs).convert(
                source, params["target"], params["out_dir"], nprocs,
                executor, record_filter=record_filter)
            self._note_fallbacks(result)
            return _result_dict(result, None)
        store_path, _, cache_state = self._store_for(source, params)
        result = BamConverter(**knobs).convert(
            store_path, params["target"], params["out_dir"], nprocs,
            executor, record_filter=record_filter)
        self._note_fallbacks(result)
        return _result_dict(result, cache_state)

    def _note_fallbacks(self, result: ConversionResult) -> None:
        """Roll a job's pipeline degradations into the service counters.

        ``batch_fallbacks`` counts lines the SAM batch pipeline pushed
        through the per-record path; ``kernel_fallbacks`` counts
        columnar slabs the kernel layer handed to the record driver.
        Both show up in ``repro status --metrics``.
        """
        batch = sum(m.fallbacks for m in result.rank_metrics)
        kernel = sum(m.kernel_fallbacks for m in result.rank_metrics)
        if batch:
            self.metrics.inc("batch_fallbacks", batch)
        if kernel:
            self.metrics.inc("kernel_fallbacks", kernel)

    def _store_for(self, source: str, params: dict[str, Any],
                   ) -> tuple[str, str | None, str | None]:
        """Resolve (store path, index path, cache state) for a job.

        BAMX/BAMZ/BAMC inputs are already preprocessed — they pass
        through untouched.  BAM inputs go through the artifact cache: a
        warm cache returns the stored store/BAIX without re-reading the
        BAM; the ``store_format`` parameter is part of the cache key,
        so row and columnar artifacts of one BAM coexist.
        """
        lowered = source.lower()
        if lowered.endswith((".bamx", ".bamz", ".bamc")):
            baix = params.get("baix")
            return source, baix, None
        if not lowered.endswith(".bam"):
            raise ServiceError(
                f"cannot tell the source format of {source!r}; expected "
                f"a .sam, .bam, .bamx, .bamz or .bamc file")
        entry, hit = self._preprocessed(
            source, compress=bool(params.get("compress", False)),
            store_format=params.get("store_format", "bamx"))
        store_path = self._entry_store(entry)
        mode = params.get("mode", "start")
        if mode == "overlap":
            from ..formats.baix2 import default_index_path as baix2_path
            return store_path, baix2_path(store_path), \
                "hit" if hit else "miss"
        return store_path, default_index_path(store_path), \
            "hit" if hit else "miss"

    def _preprocessed(self, bam_path: str, compress: bool,
                      store_format: str = "bamx",
                      ) -> tuple[CacheEntry, bool]:
        """Fetch-or-build the preprocessing artifacts for a BAM."""
        from ..core.bam_converter import preprocess_bam
        params = {"op": "preprocess_bam", "compress": compress}
        if store_format != "bamx":
            # Appended only for non-default formats so cache entries
            # built before BAMC existed keep their keys.
            params["store_format"] = store_format
        stem = os.path.splitext(os.path.basename(bam_path))[0]

        def builder(entry_dir: str) -> None:
            store_path = os.path.join(
                entry_dir,
                stem + store_extension(compress, store_format))
            metrics = preprocess_bam(bam_path, store_path,
                                     compress=compress,
                                     store_format=store_format)
            self.metrics.inc("preprocess_runs")
            self.metrics.observe("preprocess_seconds",
                                 metrics.total_seconds)

        return self.cache.get_or_build(bam_path, params, builder)

    @staticmethod
    def _entry_store(entry: CacheEntry) -> str:
        """The record-store artifact inside a cache entry."""
        for path in entry.files():
            if path.endswith((".bamx", ".bamz", ".bamc")):
                return path
        raise ServiceError(
            f"cache entry {entry.key} holds no record store")


class ServiceDaemon:
    """Line-JSON daemon serving a :class:`ConversionService` through
    the async gateway, over a local unix socket and/or TCP.

    Parameters
    ----------
    service:
        The façade to expose.
    socket_path:
        Unix socket to listen on (``None`` = no unix listener).
    listen:
        ``(host, port)`` TCP address to listen on (``None`` = no TCP
        listener); port 0 binds an ephemeral port reported by
        :attr:`tcp_address` after :meth:`start`.
    config:
        Optional :class:`~repro.service.gateway.GatewayConfig`.
    """

    def __init__(self, service: ConversionService,
                 socket_path: str | os.PathLike[str] | None = None,
                 listen: tuple[str, int] | None = None,
                 config: GatewayConfig | None = None) -> None:
        self.service = service
        self.socket_path = None if socket_path is None \
            else os.fspath(socket_path)
        self._gateway = GatewayServer(
            service, unix_path=self.socket_path, tcp_address=listen,
            config=config, stop_callback=self.stop)
        self._stopped = False

    @property
    def gateway(self) -> GatewayServer:
        """The underlying gateway (metrics, sessions, config)."""
        return self._gateway

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` once started with a TCP listener."""
        return self._gateway.tcp_address

    def handle_message(self, message: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one protocol request in-process; never raises."""
        return self._gateway.dispatcher.handle_message(message)

    def start(self) -> None:
        """Serve on a background thread (returns once listening)."""
        self._gateway.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        self._gateway.serve_forever()

    def wait(self, timeout: float | None = None) -> None:
        """Block until the daemon stops."""
        self._gateway.join(timeout)

    def stop(self) -> None:
        """Drain the gateway, then shut the service down (idempotent)."""
        self._gateway.stop()
        if self._stopped:
            return
        self._stopped = True
        self.service.close()


#: Job states after which a ``wait`` long-poll loop stops.
_TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceClient:
    """Blocking line-JSON client for a :class:`ServiceDaemon`.

    Parameters
    ----------
    address:
        A unix socket path (``str``/``PathLike``) or a ``(host,
        port)`` tuple for TCP.
    timeout:
        Socket timeout for individual reads/writes.
    connect_retries:
        Extra connect attempts after the first one fails — a client
        racing a just-spawned ``repro serve`` retries with
        exponential backoff instead of failing hard on the
        bind race.
    connect_backoff:
        Base delay between connect attempts (doubles per retry,
        capped at 2 s).
    poll_interval:
        Default long-poll chunk for :meth:`wait`: each server-side
        wait holds at most this long before the client re-issues, so
        a waiter is never parked on an unbounded server read while
        the server never sees a busy-poll storm.
    """

    def __init__(self, address: str | os.PathLike[str] | tuple[str, int],
                 timeout: float | None = None,
                 connect_retries: int = 0,
                 connect_backoff: float = 0.05,
                 poll_interval: float = 5.0) -> None:
        if isinstance(address, tuple):
            self.address: Any = (str(address[0]), int(address[1]))
            self.socket_path = None
        else:
            self.address = os.fspath(address)
            self.socket_path = self.address
        self._timeout = timeout
        self.poll_interval = poll_interval
        self._sock = self._connect(connect_retries, connect_backoff)
        self._stream = self._sock.makefile("rwb")

    def _connect(self, retries: int, backoff: float) -> socket.socket:
        delay = backoff
        last_error: OSError | None = None
        for attempt in range(max(0, retries) + 1):
            if attempt:
                time.sleep(delay)
                delay = min(delay * 2, 2.0)
            family = socket.AF_INET if self.socket_path is None \
                else socket.AF_UNIX
            sock = socket.socket(family, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            try:
                sock.connect(self.address)
                return sock
            except OSError as exc:
                sock.close()
                last_error = exc
        target = self.address if self.socket_path is not None \
            else "%s:%d" % self.address
        raise ServiceError(
            f"cannot reach service at {target}: {last_error}") \
            from None

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request; return the payload or raise on error.

        Server-initiated event frames (keepalive pings) interleaved
        before the response are skipped transparently.
        """
        protocol.write_message(self._stream, {"op": op, **fields})
        while True:
            response = protocol.read_message(self._stream)
            if response is None:
                raise ServiceError("service closed the connection")
            if not protocol.is_event(response):
                break
        if not response.get("ok"):
            error = response.get("error", "unspecified service error")
            code = response.get("code")
            if code == protocol.CODE_JOB_NOT_FOUND \
                    or "unknown job id" in error:
                raise JobNotFoundError(error)
            if code == protocol.CODE_OVERLOADED:
                raise ServiceOverloadedError(error)
            raise ServiceError(error)
        return response

    def submit(self, kind: str, params: dict[str, Any],
               priority: int = 0, timeout: float | None = None,
               max_retries: int = 0) -> dict[str, Any]:
        """Submit a job; returns its snapshot dict.

        Raises :class:`ServiceOverloadedError` when admission control
        refuses the job — retry later rather than resubmitting in a
        tight loop.
        """
        return self.request("submit", kind=kind, params=params,
                            priority=priority, timeout=timeout,
                            max_retries=max_retries)["job"]

    def status(self, job_id: str | None = None) -> Any:
        """Snapshot of one job, or of every job."""
        return self.request("status", job_id=job_id)["jobs"]

    def wait(self, job_id: str, timeout: float | None = None,
             poll_interval: float | None = None) -> dict[str, Any]:
        """Block until the job finishes; returns its final snapshot.

        Long-polls the daemon in ``poll_interval`` chunks: the server
        holds each request until the job is terminal or the chunk
        elapses, so the client neither busy-polls nor parks on one
        unbounded read.  With *timeout*, returns the latest snapshot
        (possibly non-terminal) once the deadline passes.
        """
        poll = self.poll_interval if poll_interval is None \
            else poll_interval
        if self._timeout is not None:
            poll = min(poll, max(0.05, self._timeout / 2))
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            chunk = poll if deadline is None else \
                max(0.0, min(poll, deadline - time.monotonic()))
            job = self.request("wait", job_id=job_id,
                               timeout=chunk)["job"]
            if job["state"] in _TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                return job

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``False`` if the job already ended."""
        return self.request("cancel", job_id=job_id)["cancelled"]

    def trace(self, job_id: str) -> list[dict[str, Any]]:
        """Span dicts recorded for one job."""
        return self.request("trace", job_id=job_id)["spans"]

    def metrics(self) -> dict[str, Any]:
        """The service metrics snapshot."""
        return self.request("metrics")["metrics"]

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self.request("ping").get("pong"))

    def shutdown(self) -> None:
        """Ask the daemon to stop."""
        self.request("shutdown")

    def close(self) -> None:
        """Close the connection."""
        self._stream.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
