"""Content-addressed preprocessing-artifact cache with LRU eviction
and digest-verified integrity.

The paper's partial-conversion result (Fig. 8) only pays off when the
sequential preprocessing products (BAMX/BAIX) are built once and reused
across many region requests.  This cache makes that reuse explicit:
artifacts are keyed by ``sha256(input file content || canonical
preprocessing parameters)``, so two submissions of the same BAM with
the same parameters share one preprocessing run no matter what the
file is called, while any content or parameter change misses cleanly.

Layout on disk::

    <cache_dir>/<key>/          one entry per key
        <stem>.bamx             whatever the builder writes
        <stem>.bamx.baix
        meta.json               key, input, params, per-file digests
    <cache_dir>/quarantine/     entries that failed integrity checks

Entries are built in a temp directory and published with one
``os.rename`` so readers never observe a half-written entry; losing
that rename race to a concurrent publisher of the same key is treated
as a hit of the existing entry.  ``meta.json`` records a SHA-256
digest per artifact file; fetches re-verify those digests (always by
default, or sampled), and an entry whose bytes no longer match — bit
rot, torn writes, manual tampering — is moved to ``quarantine/``
instead of ever being served, then rebuilt from the source input.
Startup adopts surviving entries, sweeps stale ``.build-*`` temp dirs
left by crashed builds, and quarantines entries whose ``meta.json`` is
corrupt rather than refusing to start.

A global lock guards the LRU book-keeping; per-key build locks let
concurrent submitters of the *same* input share one build while
different keys build in parallel.  Eviction is size-capped LRU: after
each build the total size is trimmed to ``max_bytes``, never evicting
the entry that was just requested.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..errors import CacheIntegrityError, ServiceError
from ..runtime import faults
from ..runtime.metrics import ServiceMetrics

_CHUNK = 1 << 20
_META = "meta.json"
_QUARANTINE = "quarantine"


def content_digest(path: str | os.PathLike[str]) -> str:
    """Streaming sha256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while chunk := fh.read(_CHUNK):
            digest.update(chunk)
    return digest.hexdigest()


def cache_key(input_path: str | os.PathLike[str], params: dict) -> str:
    """Cache key: input *content* hash combined with canonical params."""
    canon = json.dumps(params, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(content_digest(input_path).encode("ascii"))
    digest.update(b"\x00")
    digest.update(canon.encode("utf-8"))
    return digest.hexdigest()


def _dir_bytes(path: str) -> int:
    total = 0
    for name in os.listdir(path):
        total += os.path.getsize(os.path.join(path, name))
    return total


def file_digests(entry_dir: str) -> dict[str, str]:
    """Per-artifact SHA-256 digests of every file except the meta."""
    return {
        name: content_digest(os.path.join(entry_dir, name))
        for name in sorted(os.listdir(entry_dir)) if name != _META
    }


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One published cache entry."""

    key: str
    path: str
    size_bytes: int

    def file(self, name: str) -> str:
        """Absolute path of artifact *name* inside the entry."""
        return os.path.join(self.path, name)

    def files(self) -> list[str]:
        """All artifact paths in the entry (meta excluded)."""
        return sorted(
            os.path.join(self.path, name)
            for name in os.listdir(self.path) if name != _META)


class ArtifactCache:
    """Content-addressed, size-capped LRU artifact store.

    Parameters
    ----------
    cache_dir:
        Root directory; created on demand and rescanned on startup so a
        restarted service inherits earlier preprocessing runs.
    max_bytes:
        Total size cap; ``None`` disables eviction.  A single entry
        larger than the cap is kept (evicting the entry just built
        would livelock repeat requests).
    metrics:
        Optional shared :class:`ServiceMetrics` for hit/miss/eviction/
        verification counters and size gauges.
    verify:
        Digest verification policy on fetch: ``"always"`` (default),
        ``"never"``, or a float sample probability in ``[0, 1]``.
        Freshly built entries are always verified before being
        returned regardless of this policy — a partially written
        build must never be served even once.
    """

    def __init__(self, cache_dir: str | os.PathLike[str],
                 max_bytes: int | None = None,
                 metrics: ServiceMetrics | None = None,
                 verify: str | float = "always") -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ServiceError(f"max_bytes {max_bytes} must be positive")
        self.cache_dir = os.fspath(cache_dir)
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.verify_prob = self._parse_verify(verify)
        self._verify_rng = random.Random(0x5EED)
        self._lock = threading.Lock()
        self._build_locks: dict[str, threading.Lock] = {}
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        os.makedirs(self.cache_dir, exist_ok=True)
        self._scan()

    @staticmethod
    def _parse_verify(verify: str | float) -> float:
        if verify == "always":
            return 1.0
        if verify == "never":
            return 0.0
        try:
            prob = float(verify)
        except (TypeError, ValueError):
            raise ServiceError(
                f"bad cache verify policy {verify!r}; want 'always', "
                f"'never' or a probability") from None
        if not 0.0 <= prob <= 1.0:
            raise ServiceError(
                f"cache verify probability {prob} not in [0, 1]")
        return prob

    # -- public API --------------------------------------------------

    def get_or_build(self, input_path: str | os.PathLike[str],
                     params: dict,
                     builder: Callable[[str], None],
                     ) -> tuple[CacheEntry, bool]:
        """Return the entry for (*input_path*, *params*), building it
        on a miss.

        *builder(entry_dir)* must populate *entry_dir* with the
        artifacts; it runs at most once per key even under concurrent
        submission.  An entry that fails digest verification is
        quarantined and rebuilt transparently.  Returns
        ``(entry, hit)``.
        """
        key = cache_key(input_path, params)
        with self._lock:
            entry = self._touch(key)
            build_lock = self._build_locks.setdefault(key,
                                                      threading.Lock())
        if entry is not None:
            entry = self._verified_or_quarantined(entry)
            if entry is not None:
                self.metrics.inc("cache_hits")
                return entry, True
        with build_lock:
            # Re-check: another thread may have built while we waited.
            with self._lock:
                entry = self._touch(key)
            if entry is not None:
                entry = self._verified_or_quarantined(entry)
                if entry is not None:
                    self.metrics.inc("cache_hits")
                    return entry, True
            self.metrics.inc("cache_misses")
            entry = self._build(key, input_path, params, builder)
        self._evict(keep=key)
        return entry, False

    def lookup(self, input_path: str | os.PathLike[str],
               params: dict) -> CacheEntry | None:
        """Entry for (*input_path*, *params*) if cached (and passing
        verification), else ``None``."""
        key = cache_key(input_path, params)
        with self._lock:
            entry = self._touch(key)
        if entry is not None:
            entry = self._verified_or_quarantined(entry)
        self.metrics.inc("cache_hits" if entry else "cache_misses")
        return entry

    def total_bytes(self) -> int:
        """Sum of all entry sizes."""
        with self._lock:
            return sum(e.size_bytes for e in self._entries.values())

    def keys(self) -> list[str]:
        """Keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def quarantined(self) -> list[str]:
        """Paths currently held in the quarantine directory."""
        qdir = os.path.join(self.cache_dir, _QUARANTINE)
        if not os.path.isdir(qdir):
            return []
        return sorted(os.path.join(qdir, name)
                      for name in os.listdir(qdir))

    # -- integrity ---------------------------------------------------

    def _check_entry(self, entry: CacheEntry) -> str | None:
        """Digest-verify one entry; returns a failure detail or
        ``None`` when the entry is intact."""
        meta_path = os.path.join(entry.path, _META)
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
            if not isinstance(meta, dict):
                return "meta.json is not an object"
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            return f"unreadable meta.json: {exc}"
        digests = meta.get("files")
        if not isinstance(digests, dict):
            # Entry predates digest recording: nothing to verify
            # against.  Served as-is for compatibility, but counted so
            # operators can see unverifiable entries exist.
            self.metrics.inc("cache_verify_skipped")
            return None
        for name, want in sorted(digests.items()):
            path = os.path.join(entry.path, name)
            try:
                got = content_digest(path)
            except OSError as exc:
                return f"artifact {name} unreadable: {exc}"
            if got != want:
                return (f"artifact {name} digest mismatch "
                        f"(want {want[:12]}..., got {got[:12]}...)")
        extra = set(os.listdir(entry.path)) - set(digests) - {_META}
        if extra:
            return f"unexpected files in entry: {sorted(extra)}"
        return None

    def _verified_or_quarantined(self,
                                 entry: CacheEntry) -> CacheEntry | None:
        """Apply the fetch-time verification policy to *entry*.

        Returns the entry when it passes (or verification is skipped
        by policy), or ``None`` after quarantining a failing entry —
        the caller treats that as a miss and rebuilds.
        """
        faults.fire("cache.fetch")
        if faults.should_corrupt("cache.fetch"):
            self._corrupt_one_artifact(entry)
        if self.verify_prob <= 0.0:
            return entry
        if self.verify_prob < 1.0 \
                and self._verify_rng.random() >= self.verify_prob:
            return entry
        detail = self._check_entry(entry)
        if detail is None:
            self.metrics.inc("cache_verify_ok")
            return entry
        self.metrics.inc("cache_verify_failed")
        self._quarantine(entry.key, entry.path, detail)
        return None

    @staticmethod
    def _corrupt_one_artifact(entry: CacheEntry) -> None:
        # Fault-injection helper: simulate bit rot by truncating the
        # first artifact file of the entry.
        files = entry.files()
        if files:
            size = os.path.getsize(files[0])
            with open(files[0], "r+b") as fh:
                fh.truncate(size // 2)

    def _quarantine(self, key: str, path: str, reason: str) -> None:
        """Move a failing entry aside; it must never be served again."""
        qdir = os.path.join(self.cache_dir, _QUARANTINE)
        os.makedirs(qdir, exist_ok=True)
        base = os.path.basename(path.rstrip(os.sep))
        dest = os.path.join(qdir, base)
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = os.path.join(qdir, f"{base}.{n}")
        try:
            os.rename(path, dest)
        except OSError:
            # Cross-device or concurrent removal: deleting is as safe
            # as quarantining — the entry just must not be served.
            shutil.rmtree(path, ignore_errors=True)
        with self._lock:
            self._entries.pop(key, None)
            self._publish_gauges()
        self.metrics.inc("cache_quarantined")

    # -- internals ---------------------------------------------------

    def _touch(self, key: str) -> CacheEntry | None:
        # Called with the lock held: mark *key* most recently used.
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def _scan(self) -> None:
        """Adopt entries already on disk (service restart).

        Stale ``.build-*`` temp dirs — the residue of builds a crash
        interrupted before publication — are swept.  Entries whose
        ``meta.json`` is truncated or corrupt are quarantined instead
        of crashing the whole daemon on startup.
        """
        found = []
        for name in os.listdir(self.cache_dir):
            path = os.path.join(self.cache_dir, name)
            if name == _QUARANTINE:
                continue
            if name.startswith(".build-") and os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
                self.metrics.inc("cache_tmp_swept")
                continue
            meta_path = os.path.join(path, _META)
            if not os.path.isfile(meta_path):
                continue  # foreign file or dir; leave it alone
            try:
                with open(meta_path, encoding="utf-8") as fh:
                    meta = json.load(fh)
                if not isinstance(meta, dict):
                    raise ValueError("meta.json is not an object")
            except (OSError, ValueError, UnicodeDecodeError) as exc:
                self.metrics.inc("cache_scan_errors")
                self._quarantine(name, path,
                                 f"corrupt meta.json at startup: {exc}")
                continue
            found.append((meta.get("last_used", 0.0),
                          CacheEntry(name, path, _dir_bytes(path))))
        for _, entry in sorted(found, key=lambda pair: pair[0]):
            self._entries[entry.key] = entry
        self._publish_gauges()

    def _build(self, key: str, input_path: str | os.PathLike[str],
               params: dict, builder: Callable[[str], None]) -> CacheEntry:
        final_dir = os.path.join(self.cache_dir, key)
        tmp_dir = os.path.join(self.cache_dir,
                               f".build-{key[:16]}-{os.getpid()}")
        os.makedirs(tmp_dir, exist_ok=True)
        try:
            builder(tmp_dir)
            faults.fire("cache.build")
            meta = {
                "key": key,
                "input": os.fspath(input_path),
                "params": params,
                "files": file_digests(tmp_dir),
                "created_at": time.time(),
                "last_used": time.time(),
            }
            with open(os.path.join(tmp_dir, _META), "w",
                      encoding="utf-8") as fh:
                json.dump(meta, fh)
            if faults.should_corrupt("cache.build"):
                self._corrupt_one_artifact(
                    CacheEntry(key, tmp_dir, 0))
            try:
                os.rename(tmp_dir, final_dir)
            except OSError:
                # Lost the publish race: a concurrent process already
                # renamed this key into place (ENOTEMPTY/EEXIST).
                # Its entry is byte-equivalent by construction — the
                # key is content-addressed — so adopt it as a hit
                # instead of failing the build.
                if not os.path.isfile(os.path.join(final_dir, _META)):
                    raise
                shutil.rmtree(tmp_dir, ignore_errors=True)
                self.metrics.inc("cache_publish_races")
        except BaseException:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            raise
        entry = CacheEntry(key, final_dir, _dir_bytes(final_dir))
        # A just-built entry is always verified before being served:
        # a torn write (crash, full disk, injected fault) must surface
        # as a structured error now, not as corrupt conversions later.
        detail = self._check_entry(entry)
        if detail is not None:
            self.metrics.inc("cache_verify_failed")
            self._quarantine(key, final_dir, detail)
            raise CacheIntegrityError(
                f"cache entry {key[:16]}... failed verification "
                f"after build ({detail}); entry quarantined")
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._publish_gauges()
        return entry

    def _evict(self, keep: str) -> None:
        """Trim total size to ``max_bytes``, sparing entry *keep*."""
        if self.max_bytes is None:
            return
        doomed: list[CacheEntry] = []
        with self._lock:
            total = sum(e.size_bytes for e in self._entries.values())
            for key in list(self._entries):
                if total <= self.max_bytes:
                    break
                if key == keep:
                    continue
                entry = self._entries.pop(key)
                total -= entry.size_bytes
                doomed.append(entry)
            self._publish_gauges()
        for entry in doomed:
            shutil.rmtree(entry.path, ignore_errors=True)
            self.metrics.inc("cache_evictions")

    def _publish_gauges(self) -> None:
        # Called with the lock held.
        self.metrics.set_gauge(
            "cache_bytes",
            sum(e.size_bytes for e in self._entries.values()))
        self.metrics.set_gauge("cache_entries", len(self._entries))
