"""Content-addressed preprocessing-artifact cache with LRU eviction.

The paper's partial-conversion result (Fig. 8) only pays off when the
sequential preprocessing products (BAMX/BAIX) are built once and reused
across many region requests.  This cache makes that reuse explicit:
artifacts are keyed by ``sha256(input file content || canonical
preprocessing parameters)``, so two submissions of the same BAM with
the same parameters share one preprocessing run no matter what the
file is called, while any content or parameter change misses cleanly.

Layout on disk::

    <cache_dir>/<key>/          one entry per key
        <stem>.bamx             whatever the builder writes
        <stem>.bamx.baix
        meta.json               key, input, params, size, last_used

Entries are built in a temp directory and published with one
``os.rename`` so readers never observe a half-written entry.  A global
lock guards the LRU book-keeping; per-key build locks let concurrent
submitters of the *same* input share one build while different keys
build in parallel.  Eviction is size-capped LRU: after each build the
total size is trimmed to ``max_bytes``, never evicting the entry that
was just requested.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..errors import ServiceError
from ..runtime.metrics import ServiceMetrics

_CHUNK = 1 << 20
_META = "meta.json"


def content_digest(path: str | os.PathLike[str]) -> str:
    """Streaming sha256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while chunk := fh.read(_CHUNK):
            digest.update(chunk)
    return digest.hexdigest()


def cache_key(input_path: str | os.PathLike[str], params: dict) -> str:
    """Cache key: input *content* hash combined with canonical params."""
    canon = json.dumps(params, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(content_digest(input_path).encode("ascii"))
    digest.update(b"\x00")
    digest.update(canon.encode("utf-8"))
    return digest.hexdigest()


def _dir_bytes(path: str) -> int:
    total = 0
    for name in os.listdir(path):
        total += os.path.getsize(os.path.join(path, name))
    return total


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One published cache entry."""

    key: str
    path: str
    size_bytes: int

    def file(self, name: str) -> str:
        """Absolute path of artifact *name* inside the entry."""
        return os.path.join(self.path, name)

    def files(self) -> list[str]:
        """All artifact paths in the entry (meta excluded)."""
        return sorted(
            os.path.join(self.path, name)
            for name in os.listdir(self.path) if name != _META)


class ArtifactCache:
    """Content-addressed, size-capped LRU artifact store.

    Parameters
    ----------
    cache_dir:
        Root directory; created on demand and rescanned on startup so a
        restarted service inherits earlier preprocessing runs.
    max_bytes:
        Total size cap; ``None`` disables eviction.  A single entry
        larger than the cap is kept (evicting the entry just built
        would livelock repeat requests).
    metrics:
        Optional shared :class:`ServiceMetrics` for hit/miss/eviction
        counters and size gauges.
    """

    def __init__(self, cache_dir: str | os.PathLike[str],
                 max_bytes: int | None = None,
                 metrics: ServiceMetrics | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ServiceError(f"max_bytes {max_bytes} must be positive")
        self.cache_dir = os.fspath(cache_dir)
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._lock = threading.Lock()
        self._build_locks: dict[str, threading.Lock] = {}
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        os.makedirs(self.cache_dir, exist_ok=True)
        self._scan()

    # -- public API --------------------------------------------------

    def get_or_build(self, input_path: str | os.PathLike[str],
                     params: dict,
                     builder: Callable[[str], None],
                     ) -> tuple[CacheEntry, bool]:
        """Return the entry for (*input_path*, *params*), building it
        on a miss.

        *builder(entry_dir)* must populate *entry_dir* with the
        artifacts; it runs at most once per key even under concurrent
        submission.  Returns ``(entry, hit)``.
        """
        key = cache_key(input_path, params)
        with self._lock:
            entry = self._touch(key)
            build_lock = self._build_locks.setdefault(key,
                                                      threading.Lock())
        if entry is not None:
            self.metrics.inc("cache_hits")
            return entry, True
        with build_lock:
            # Re-check: another thread may have built while we waited.
            with self._lock:
                entry = self._touch(key)
            if entry is not None:
                self.metrics.inc("cache_hits")
                return entry, True
            self.metrics.inc("cache_misses")
            entry = self._build(key, input_path, params, builder)
        self._evict(keep=key)
        return entry, False

    def lookup(self, input_path: str | os.PathLike[str],
               params: dict) -> CacheEntry | None:
        """Entry for (*input_path*, *params*) if cached, else ``None``."""
        key = cache_key(input_path, params)
        with self._lock:
            entry = self._touch(key)
        self.metrics.inc("cache_hits" if entry else "cache_misses")
        return entry

    def total_bytes(self) -> int:
        """Sum of all entry sizes."""
        with self._lock:
            return sum(e.size_bytes for e in self._entries.values())

    def keys(self) -> list[str]:
        """Keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    # -- internals ---------------------------------------------------

    def _touch(self, key: str) -> CacheEntry | None:
        # Called with the lock held: mark *key* most recently used.
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def _scan(self) -> None:
        """Adopt entries already on disk (service restart)."""
        found = []
        for name in os.listdir(self.cache_dir):
            path = os.path.join(self.cache_dir, name)
            meta_path = os.path.join(path, _META)
            if not os.path.isfile(meta_path):
                continue  # temp build dir or foreign file
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
            found.append((meta.get("last_used", 0.0),
                          CacheEntry(name, path, _dir_bytes(path))))
        for _, entry in sorted(found, key=lambda pair: pair[0]):
            self._entries[entry.key] = entry
        self._publish_gauges()

    def _build(self, key: str, input_path: str | os.PathLike[str],
               params: dict, builder: Callable[[str], None]) -> CacheEntry:
        final_dir = os.path.join(self.cache_dir, key)
        tmp_dir = os.path.join(self.cache_dir,
                               f".build-{key[:16]}-{os.getpid()}")
        os.makedirs(tmp_dir, exist_ok=True)
        try:
            builder(tmp_dir)
            meta = {
                "key": key,
                "input": os.fspath(input_path),
                "params": params,
                "created_at": time.time(),
                "last_used": time.time(),
            }
            with open(os.path.join(tmp_dir, _META), "w",
                      encoding="utf-8") as fh:
                json.dump(meta, fh)
            os.rename(tmp_dir, final_dir)
        except BaseException:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            raise
        entry = CacheEntry(key, final_dir, _dir_bytes(final_dir))
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._publish_gauges()
        return entry

    def _evict(self, keep: str) -> None:
        """Trim total size to ``max_bytes``, sparing entry *keep*."""
        if self.max_bytes is None:
            return
        doomed: list[CacheEntry] = []
        with self._lock:
            total = sum(e.size_bytes for e in self._entries.values())
            for key in list(self._entries):
                if total <= self.max_bytes:
                    break
                if key == keep:
                    continue
                entry = self._entries.pop(key)
                total -= entry.size_bytes
                doomed.append(entry)
            self._publish_gauges()
        for entry in doomed:
            shutil.rmtree(entry.path, ignore_errors=True)
            self.metrics.inc("cache_evictions")

    def _publish_gauges(self) -> None:
        # Called with the lock held.
        self.metrics.set_gauge(
            "cache_bytes",
            sum(e.size_bytes for e in self._entries.values()))
        self.metrics.set_gauge("cache_entries", len(self._entries))
