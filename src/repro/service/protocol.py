"""Line-JSON wire protocol between ``repro serve`` and its clients.

One request or response per line: a UTF-8 JSON object terminated by
``\\n``.  Requests carry an ``op`` field (``submit``, ``status``,
``cancel``, ``metrics``, ``wait``, ``trace``, ``ping``,
``shutdown``); responses
carry ``ok`` (bool) plus either the op-specific payload or an
``error`` string.  The framing is deliberately trivial so any language
— or ``nc`` in a pinch — can drive the daemon.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from ..errors import ProtocolError

#: Operations the daemon understands.
OPS = ("submit", "status", "cancel", "metrics", "wait", "trace",
       "ping", "shutdown")

#: Hard cap on one protocol line; a submit request is far smaller.
MAX_LINE = 1 << 20


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a newline-terminated line."""
    try:
        return json.dumps(message, separators=(",", ":"),
                          allow_nan=False).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from None


def decode(line: bytes) -> dict[str, Any]:
    """Parse one protocol line into a message dict."""
    if len(line) > MAX_LINE:
        raise ProtocolError(f"protocol line exceeds {MAX_LINE} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message from a socket file; ``None`` on clean EOF."""
    line = stream.readline(MAX_LINE + 1)
    if not line:
        return None
    return decode(line)


def write_message(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one message to a socket file and flush it."""
    stream.write(encode(message))
    stream.flush()


def error_response(message: str) -> dict[str, Any]:
    """Standard failure envelope."""
    return {"ok": False, "error": message}


def ok_response(**payload: Any) -> dict[str, Any]:
    """Standard success envelope."""
    return {"ok": True, **payload}
