"""Line-JSON wire protocol between ``repro serve`` and its clients.

One request or response per line: a UTF-8 JSON object terminated by
``\\n``.  Requests carry an ``op`` field (``submit``, ``status``,
``cancel``, ``metrics``, ``wait``, ``trace``, ``ping``,
``shutdown``); responses
carry ``ok`` (bool) plus either the op-specific payload or an
``error`` string.  The framing is deliberately trivial so any language
— or ``nc`` in a pinch — can drive the daemon.

Failure responses may additionally carry a machine-readable ``code``
(``bad_frame``, ``overloaded``, ``job_not_found``, ...) so clients can
react without parsing the human-readable ``error`` text.  The server
may also interleave *event* frames — ``{"event": "ping"}`` keepalives
— between responses; request/response clients must skip any frame
that has an ``event`` field and no ``ok`` field.

The same framing runs over the local unix socket and over TCP
(``repro serve --listen HOST:PORT``); :func:`parse_address` parses the
``HOST:PORT`` notation used by the CLI flags.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from ..errors import ProtocolError

#: Operations the daemon understands.
OPS = ("submit", "status", "cancel", "metrics", "wait", "trace",
       "ping", "shutdown")

#: Hard cap on one protocol line; a submit request is far smaller.
MAX_LINE = 1 << 20

#: Machine-readable error codes carried in failure responses.
CODE_BAD_FRAME = "bad_frame"
CODE_OVERLOADED = "overloaded"
CODE_JOB_NOT_FOUND = "job_not_found"
CODE_BAD_REQUEST = "bad_request"
CODE_UNKNOWN_OP = "unknown_op"
#: An armed REPRO_FAULTS injection point fired while handling the
#: request; the session stays alive and the client may retry.
CODE_FAULT_INJECTED = "fault_injected"


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a newline-terminated line."""
    try:
        return json.dumps(message, separators=(",", ":"),
                          allow_nan=False).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from None


def decode(line: bytes) -> dict[str, Any]:
    """Parse one protocol line into a message dict."""
    if len(line) > MAX_LINE:
        raise ProtocolError(f"protocol line exceeds {MAX_LINE} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message from a socket file; ``None`` on clean EOF."""
    line = stream.readline(MAX_LINE + 1)
    if not line:
        return None
    return decode(line)


def write_message(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one message to a socket file and flush it."""
    stream.write(encode(message))
    stream.flush()


def error_response(message: str,
                   code: str | None = None) -> dict[str, Any]:
    """Standard failure envelope, optionally with a machine code."""
    response: dict[str, Any] = {"ok": False, "error": message}
    if code is not None:
        response["code"] = code
    return response


def ok_response(**payload: Any) -> dict[str, Any]:
    """Standard success envelope."""
    return {"ok": True, **payload}


def bad_frame_response(detail: str) -> dict[str, Any]:
    """Failure envelope for an unparseable or oversized frame.

    The session stays alive after sending this — one garbage line must
    not kill a connection that may have valid requests pipelined
    behind it.
    """
    return error_response(f"bad_frame: {detail}", code=CODE_BAD_FRAME)


def overloaded_response(detail: str) -> dict[str, Any]:
    """Failure envelope for an op rejected by admission control."""
    return error_response(f"overloaded: {detail}", code=CODE_OVERLOADED)


def event(name: str, **payload: Any) -> dict[str, Any]:
    """A server-initiated event frame (e.g. a keepalive ping)."""
    return {"event": name, **payload}


def is_event(message: dict[str, Any]) -> bool:
    """Whether *message* is an event frame rather than a response."""
    return "event" in message and "ok" not in message


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (``[v6::addr]:PORT`` accepted) to a tuple.

    ``:PORT`` and ``PORT`` alone bind/connect on localhost.  Port 0 is
    allowed — the OS picks a free port (the daemon reports the bound
    one).
    """
    text = text.strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    host = host.strip("[]") or "127.0.0.1"
    try:
        port_num = int(port)
    except ValueError:
        raise ProtocolError(
            f"bad service address {text!r}; expected HOST:PORT") \
            from None
    if not 0 <= port_num <= 65535:
        raise ProtocolError(
            f"bad service address {text!r}: port {port_num} out of "
            f"range")
    return host, port_num
