"""Write-ahead job journal: crash-durable JSONL log of job state.

The worker pool holds every job in memory, so a daemon crash used to
lose the whole queue.  The journal fixes that with the standard
write-ahead discipline: every submission and every state transition is
appended to an append-only JSONL file *before* the in-memory change
becomes visible, and a restarted service replays the file to rebuild
the queue — same job ids, same attempt counts, same results for jobs
that already finished.

Record grammar (one JSON object per line)::

    {"event": "submit",     "job": {<Job.to_spec()>}}
    {"event": "transition", "job_id": ..., "to": "running",
     "attempts": N, "error": ..., "result": ...,
     "started_at": ..., "finished_at": ...}

Replay folds the records in order: ``submit`` (re)creates the job
spec, ``transition`` updates it.  A torn tail — the half-line a crash
leaves behind — and corrupt interior lines are *skipped and counted*,
never fatal: the journal exists precisely for processes that died
mid-write.

Compaction rewrites the file as one ``submit`` record per job holding
its current spec (atomic ``os.replace`` of a fsynced temp file), and
runs automatically once ``compact_threshold`` records accumulate.

Durability is configurable per deployment through the fsync policy:

* ``always``   — fsync after every append (every acknowledged record
  survives power loss);
* ``interval`` — flush every append, fsync at most once per
  ``fsync_interval`` seconds (bounded-loss window, default);
* ``never``    — flush to the OS only (survives process crashes, not
  power loss).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

from ..errors import JournalError
from ..runtime import faults
from .jobs import Job, job_id_sequence

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "interval", "never")


class JobJournal:
    """Append-only JSONL write-ahead log of job state.

    Parameters
    ----------
    path:
        Journal file; created (with its parent directory) on demand.
    fsync:
        One of :data:`FSYNC_POLICIES`.
    fsync_interval:
        Maximum staleness of the ``interval`` policy's last fsync.
    compact_threshold:
        Auto-compact after this many appended records (``None``
        disables auto-compaction; :meth:`compact` always works).
    """

    def __init__(self, path: str | os.PathLike[str],
                 fsync: str = "interval",
                 fsync_interval: float = 0.2,
                 compact_threshold: int | None = 10_000) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; choose from "
                f"{FSYNC_POLICIES}")
        if compact_threshold is not None and compact_threshold < 1:
            raise JournalError(
                f"compact_threshold {compact_threshold} must be >= 1")
        self.path = os.fspath(path)
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.compact_threshold = compact_threshold
        self._lock = threading.RLock()
        self._last_fsync = 0.0
        self._records_since_compact = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "ab")
        self._seal_torn_tail()

    def _seal_torn_tail(self) -> None:
        # A crash mid-append can leave a half-written last line with
        # no trailing newline.  Appending straight after it would glue
        # the next record onto the torn fragment, and replay would
        # drop *both* as one bad_line — turning a harmless torn tail
        # into a lost acknowledged record.  Sealing the tail with a
        # newline confines the damage to the torn line itself.
        try:
            if os.path.getsize(self.path) == 0:
                return
            with open(self.path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                torn = probe.read(1) != b"\n"
            if torn:
                self._fh.write(b"\n")
                self._fh.flush()
                if self.fsync != "never":
                    os.fsync(self._fh.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot repair journal tail {self.path}: {exc}") \
                from None

    # -- writing -----------------------------------------------------

    def append_submit(self, job: Job) -> None:
        """Journal a job submission (call *before* enqueueing it)."""
        self._append({"event": "submit", "job": job.to_spec()})

    def append_transition(self, job: Job) -> None:
        """Journal the state *job* just transitioned into."""
        self._append({
            "event": "transition",
            "job_id": job.job_id,
            "to": job.state.value,
            "attempts": job.attempts,
            "error": job.error,
            "result": job.result,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
        })

    def _append(self, record: dict[str, Any]) -> None:
        try:
            data = json.dumps(record, separators=(",", ":"),
                              allow_nan=False).encode("utf-8") + b"\n"
        except (TypeError, ValueError) as exc:
            raise JournalError(
                f"unserializable journal record: {exc}") from None
        with self._lock:
            if self._fh.closed:
                raise JournalError(
                    f"journal {self.path} is closed")
            faults.fire("journal.append")
            data = faults.corrupt("journal.append", data)
            try:
                self._fh.write(data)
                self._fh.flush()
                self._maybe_fsync()
            except OSError as exc:
                raise JournalError(
                    f"cannot append to journal {self.path}: {exc}") \
                    from None
            self._records_since_compact += 1

    def _maybe_fsync(self) -> None:
        # Called with the lock held, after a flushed write.
        if self.fsync == "never":
            return
        now = time.monotonic()
        if self.fsync == "interval" \
                and now - self._last_fsync < self.fsync_interval:
            return
        os.fsync(self._fh.fileno())
        self._last_fsync = now

    def needs_compact(self) -> bool:
        """Whether the record budget is exhausted (cheap pre-check)."""
        with self._lock:
            return self.compact_threshold is not None \
                and self._records_since_compact \
                >= self.compact_threshold

    def maybe_compact(self, jobs: list[Job]) -> bool:
        """Auto-compact when the record budget is exhausted.

        The pool calls this opportunistically after journaling; it
        returns whether a compaction ran.  The threshold re-check and
        the compaction itself happen under one hold of the journal
        lock, so two racing callers cannot both rewrite the file.

        .. warning:: *jobs* must be a complete snapshot that cannot go
           stale while this call runs — the caller is responsible for
           excluding concurrent submits (see
           :meth:`WorkerPool.compact_journal`, which holds the
           scheduler lock across snapshot and compaction).  A submit
           appended to the old file after the snapshot would be erased
           by the rewrite.
        """
        with self._lock:
            if not self.needs_compact():
                return False
            self.compact(jobs)
        return True

    def compact(self, jobs: list[Job]) -> None:
        """Atomically rewrite the journal as one record per job.

        The snapshot is written to a temp file, fsynced, and
        ``os.replace``d over the journal, so a crash during compaction
        leaves either the old log or the new snapshot — never a mix.
        """
        tmp_path = self.path + ".compact"
        with self._lock:
            try:
                with open(tmp_path, "wb") as tmp:
                    for job in jobs:
                        record = {"event": "submit",
                                  "job": job.to_spec()}
                        tmp.write(json.dumps(
                            record, separators=(",", ":"),
                            allow_nan=False).encode("utf-8") + b"\n")
                    tmp.flush()
                    os.fsync(tmp.fileno())
                if not self._fh.closed:
                    self._fh.close()
                os.replace(tmp_path, self.path)
            except OSError as exc:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise JournalError(
                    f"cannot compact journal {self.path}: {exc}") \
                    from None
            finally:
                if self._fh.closed:
                    self._fh = open(self.path, "ab")
            self._records_since_compact = 0

    def close(self) -> None:
        """Flush, fsync (unless ``never``) and close the file."""
        with self._lock:
            if self._fh.closed:
                return
            self._fh.flush()
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
            self._fh.close()


def replay(path: str | os.PathLike[str],
           ) -> tuple[dict[str, dict[str, Any]], dict[str, int]]:
    """Fold a journal file into the latest spec per job.

    Returns ``(specs, stats)`` where *specs* maps job id to the job's
    most recent :meth:`Job.to_spec` view in submission order, and
    *stats* counts ``records``, ``bad_lines`` (torn tail / corrupt
    interior lines, skipped) and ``orphan_transitions`` (transitions
    whose submit record was lost to corruption, skipped).
    """
    specs: dict[str, dict[str, Any]] = {}
    stats = {"records": 0, "bad_lines": 0, "orphan_transitions": 0}
    path = os.fspath(path)
    if not os.path.exists(path):
        return specs, stats
    with open(path, "rb") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (UnicodeDecodeError, ValueError):
                stats["bad_lines"] += 1
                continue
            event = record.get("event")
            if event == "submit":
                job = record.get("job")
                if not isinstance(job, dict) or "job_id" not in job:
                    stats["bad_lines"] += 1
                    continue
                specs[job["job_id"]] = job
            elif event == "transition":
                spec = specs.get(record.get("job_id"))
                if spec is None:
                    stats["orphan_transitions"] += 1
                    continue
                spec["state"] = record.get("to", spec["state"])
                spec["attempts"] = record.get("attempts",
                                              spec["attempts"])
                spec["error"] = record.get("error")
                spec["result"] = record.get("result")
                spec["started_at"] = record.get("started_at")
                spec["finished_at"] = record.get("finished_at")
            else:
                stats["bad_lines"] += 1
                continue
            stats["records"] += 1
    return specs, stats


def high_water_mark(specs: dict[str, dict[str, Any]]) -> int:
    """Highest numeric job-id sequence in replayed *specs* (0 if
    none); seeds :func:`~repro.service.jobs.seed_job_counter`."""
    if not specs:
        return 0
    return max(job_id_sequence(job_id) for job_id in specs)
