"""Long-lived conversion job service.

Turns the one-shot converters into a service: jobs with priorities,
timeouts and retries (:mod:`jobs`), a thread worker pool draining a
priority queue (:mod:`scheduler`), a content-addressed cache of
preprocessing artifacts with LRU eviction (:mod:`cache`), and a
line-JSON daemon/client pair over a local unix socket
(:mod:`server`, :mod:`protocol`).
"""

from .cache import ArtifactCache, CacheEntry, cache_key, content_digest
from .jobs import Job, JobState
from .scheduler import WorkerPool
from .server import ConversionService, ServiceClient, ServiceDaemon

__all__ = [
    "Job", "JobState",
    "WorkerPool",
    "ArtifactCache", "CacheEntry", "cache_key", "content_digest",
    "ConversionService", "ServiceDaemon", "ServiceClient",
]
