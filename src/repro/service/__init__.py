"""Long-lived conversion job service.

Turns the one-shot converters into a service: jobs with priorities,
timeouts and retries (:mod:`jobs`), a thread worker pool draining a
priority queue (:mod:`scheduler`), a write-ahead job journal replayed
for crash recovery (:mod:`journal`), a content-addressed cache of
preprocessing artifacts with LRU eviction and digest-verified
integrity (:mod:`cache`), a line-JSON wire protocol (:mod:`protocol`),
and the async gateway front door (:mod:`gateway`) multiplexing
unix-socket and TCP clients with per-connection sessions,
executor-backed dispatch and admission control (:mod:`server` wires it
all together).
"""

from .cache import ArtifactCache, CacheEntry, cache_key, \
    content_digest, file_digests
from .gateway import AdmissionController, Dispatcher, FrameError, \
    FrameReader, GatewayConfig, GatewayServer, Session
from .jobs import Job, JobState, seed_job_counter
from .journal import JobJournal, high_water_mark, replay
from .scheduler import WorkerPool
from .server import ConversionService, ServiceClient, ServiceDaemon

__all__ = [
    "Job", "JobState", "seed_job_counter",
    "WorkerPool",
    "JobJournal", "replay", "high_water_mark",
    "ArtifactCache", "CacheEntry", "cache_key", "content_digest",
    "file_digests",
    "ConversionService", "ServiceDaemon", "ServiceClient",
    "AdmissionController", "Dispatcher", "FrameError", "FrameReader",
    "GatewayConfig", "GatewayServer", "Session",
]
