"""Long-lived conversion job service.

Turns the one-shot converters into a service: jobs with priorities,
timeouts and retries (:mod:`jobs`), a thread worker pool draining a
priority queue (:mod:`scheduler`), a content-addressed cache of
preprocessing artifacts with LRU eviction (:mod:`cache`), a line-JSON
wire protocol (:mod:`protocol`), and the async gateway front door
(:mod:`gateway`) multiplexing unix-socket and TCP clients with
per-connection sessions, executor-backed dispatch and admission
control (:mod:`server` wires it all together).
"""

from .cache import ArtifactCache, CacheEntry, cache_key, content_digest
from .gateway import AdmissionController, Dispatcher, FrameError, \
    FrameReader, GatewayConfig, GatewayServer, Session
from .jobs import Job, JobState
from .scheduler import WorkerPool
from .server import ConversionService, ServiceClient, ServiceDaemon

__all__ = [
    "Job", "JobState",
    "WorkerPool",
    "ArtifactCache", "CacheEntry", "cache_key", "content_digest",
    "ConversionService", "ServiceDaemon", "ServiceClient",
    "AdmissionController", "Dispatcher", "FrameError", "FrameReader",
    "GatewayConfig", "GatewayServer", "Session",
]
