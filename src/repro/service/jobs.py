"""Job model for the conversion service.

A :class:`Job` is one unit of work submitted to the service: a full or
partial conversion, or a standalone preprocessing run.  Jobs move
through a small state machine::

    QUEUED -> RUNNING -> DONE
                      -> FAILED      (after exhausting retries)
                      -> QUEUED      (retry with backoff)
    QUEUED/RUNNING -> CANCELLED

State transitions are validated centrally (:meth:`Job.transition`) so a
scheduler bug cannot silently resurrect a finished job.  The job object
itself is passive — the scheduler owns the locking discipline; callers
outside the service read jobs only through :meth:`Job.to_dict`
snapshots or the :attr:`Job.done` event.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServiceError


class JobState(enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state admits no further transitions."""
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


#: Allowed (from, to) state transitions.
_TRANSITIONS: frozenset[tuple[JobState, JobState]] = frozenset({
    (JobState.QUEUED, JobState.RUNNING),
    (JobState.QUEUED, JobState.CANCELLED),
    (JobState.RUNNING, JobState.DONE),
    (JobState.RUNNING, JobState.FAILED),
    (JobState.RUNNING, JobState.CANCELLED),
    (JobState.RUNNING, JobState.QUEUED),  # retry re-queue
})

_job_counter = itertools.count(1)


def next_job_id() -> str:
    """Monotonic process-local job id (``job-000001``, ...)."""
    return f"job-{next(_job_counter):06d}"


@dataclass
class Job:
    """One unit of service work plus its scheduling policy.

    Attributes
    ----------
    kind:
        Work type dispatched by the service runner (``convert``,
        ``region``, ``preprocess``).
    params:
        Kind-specific parameters (input path, target, out dir, ...).
    priority:
        Higher values are scheduled first among ready jobs; ties are
        FIFO by submission order.
    timeout:
        Per-attempt wall-clock limit in seconds (``None`` = unlimited).
    max_retries:
        Extra attempts allowed after the first one fails or times out.
    backoff:
        Base retry delay; attempt ``k`` waits ``backoff * 2**(k-1)``.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    timeout: float | None = None
    max_retries: int = 0
    backoff: float = 0.1
    job_id: str = field(default_factory=next_job_id)

    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: Any = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)
    cancel_requested: threading.Event = field(
        default_factory=threading.Event, repr=False)
    #: Span dicts recorded by the worker pool, one tree per attempt.
    #: Deliberately excluded from :meth:`to_dict` — traces can be large
    #: and are fetched on demand through the ``trace`` protocol op.
    trace: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServiceError(
                f"job {self.job_id}: max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError(
                f"job {self.job_id}: timeout must be positive")

    @property
    def attempts_left(self) -> int:
        """Attempts remaining, counting the first run as attempt 1."""
        return self.max_retries + 1 - self.attempts

    def transition(self, to: JobState) -> None:
        """Move to state *to*, enforcing the state machine."""
        if (self.state, to) not in _TRANSITIONS:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {to.value}")
        self.state = to
        if to is JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if to.terminal:
            self.finished_at = time.time()
            self.done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self.done.wait(timeout)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot for status queries/protocol."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "error": self.error,
            "result": self.result,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
