"""Job model for the conversion service.

A :class:`Job` is one unit of work submitted to the service: a full or
partial conversion, or a standalone preprocessing run.  Jobs move
through a small state machine::

    QUEUED -> RUNNING -> DONE
                      -> FAILED      (after exhausting retries)
                      -> QUEUED      (retry with backoff)
    QUEUED/RUNNING -> CANCELLED

State transitions are validated centrally (:meth:`Job.transition`) so a
scheduler bug cannot silently resurrect a finished job.  The job object
itself is passive — the scheduler owns the locking discipline; callers
outside the service read jobs only through :meth:`Job.to_dict`
snapshots or the :attr:`Job.done` event.
"""

from __future__ import annotations

import enum
import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServiceError


class JobState(enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state admits no further transitions."""
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


#: Allowed (from, to) state transitions.
_TRANSITIONS: frozenset[tuple[JobState, JobState]] = frozenset({
    (JobState.QUEUED, JobState.RUNNING),
    (JobState.QUEUED, JobState.CANCELLED),
    (JobState.RUNNING, JobState.DONE),
    (JobState.RUNNING, JobState.FAILED),
    (JobState.RUNNING, JobState.CANCELLED),
    (JobState.RUNNING, JobState.QUEUED),  # retry re-queue
})

_id_lock = threading.Lock()
_job_counter = itertools.count(1)
#: Per-process run nonce baked into job ids.  Without a journal, two
#: daemon incarnations would both hand out ``job-000001`` — the nonce
#: keeps their ids distinct.  Journaled daemons clear it through
#: :func:`seed_job_counter` so recovered id sequences simply continue.
_id_nonce = secrets.token_hex(2) + "-"


def next_job_id() -> str:
    """Monotonic process-local job id (``job-<nonce>-000001``, ...).

    The nonce disambiguates daemon restarts that share no journal; a
    journaled service calls :func:`seed_job_counter` to drop it and
    continue the journal's plain numeric sequence instead.
    """
    with _id_lock:
        return f"job-{_id_nonce}{next(_job_counter):06d}"


def seed_job_counter(floor: int, nonce: str | None = None) -> None:
    """Restart the id sequence above *floor* (journal high-water mark).

    With ``nonce=""`` (what a journaled service passes) new ids are
    plain ``job-%06d`` continuing the recovered sequence, so clients
    keep observing collision-free ids across daemon restarts.
    """
    global _job_counter, _id_nonce
    if floor < 0:
        raise ServiceError(f"job counter floor {floor} must be >= 0")
    with _id_lock:
        _job_counter = itertools.count(floor + 1)
        if nonce is not None:
            _id_nonce = nonce


def job_id_sequence(job_id: str) -> int:
    """The numeric sequence component of a job id (0 if unparseable)."""
    tail = job_id.rsplit("-", 1)[-1]
    return int(tail) if tail.isdigit() else 0


@dataclass
class Job:
    """One unit of service work plus its scheduling policy.

    Attributes
    ----------
    kind:
        Work type dispatched by the service runner (``convert``,
        ``region``, ``preprocess``).
    params:
        Kind-specific parameters (input path, target, out dir, ...).
    priority:
        Higher values are scheduled first among ready jobs; ties are
        FIFO by submission order.
    timeout:
        Per-attempt wall-clock limit in seconds (``None`` = unlimited).
    max_retries:
        Extra attempts allowed after the first one fails or times out.
    backoff:
        Base retry delay; attempt ``k`` waits ``backoff * 2**(k-1)``.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    timeout: float | None = None
    max_retries: int = 0
    backoff: float = 0.1
    job_id: str = field(default_factory=next_job_id)

    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: Any = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)
    cancel_requested: threading.Event = field(
        default_factory=threading.Event, repr=False)
    #: Span dicts recorded by the worker pool, one tree per attempt.
    #: Deliberately excluded from :meth:`to_dict` — traces can be large
    #: and are fetched on demand through the ``trace`` protocol op.
    trace: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServiceError(
                f"job {self.job_id}: max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError(
                f"job {self.job_id}: timeout must be positive")

    @property
    def attempts_left(self) -> int:
        """Attempts remaining, counting the first run as attempt 1."""
        return self.max_retries + 1 - self.attempts

    def transition(self, to: JobState) -> None:
        """Move to state *to*, enforcing the state machine."""
        if (self.state, to) not in _TRANSITIONS:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {to.value}")
        self.state = to
        if to is JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if to.terminal:
            self.finished_at = time.time()
            self.done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self.done.wait(timeout)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot for status queries/protocol."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "error": self.error,
            "result": self.result,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def to_spec(self) -> dict[str, Any]:
        """Full JSON-safe (de)serialization of the job.

        Unlike :meth:`to_dict` (a read-only status snapshot) this
        round-trips through :meth:`from_spec`: it carries the
        scheduling policy (timeout, backoff, params) a journal replay
        needs to actually *re-run* the job.  Traces are excluded —
        they are observability data, not recovery state.
        """
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": dict(self.params),
            "priority": self.priority,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "state": self.state.value,
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "Job":
        """Reconstruct a job from a :meth:`to_spec` dict.

        Terminal jobs come back with their ``done`` event set, so
        ``wait``/status work identically for recovered and live jobs.
        """
        try:
            state = JobState(spec.get("state", "queued"))
        except ValueError:
            raise ServiceError(
                f"job spec has unknown state {spec.get('state')!r}") \
                from None
        try:
            job = cls(
                kind=spec["kind"],
                params=dict(spec.get("params", {})),
                priority=int(spec.get("priority", 0)),
                timeout=spec.get("timeout"),
                max_retries=int(spec.get("max_retries", 0)),
                backoff=float(spec.get("backoff", 0.1)),
                job_id=spec["job_id"],
            )
        except KeyError as exc:
            raise ServiceError(
                f"job spec is missing field {exc.args[0]!r}") from None
        job.state = state
        job.attempts = int(spec.get("attempts", 0))
        job.result = spec.get("result")
        job.error = spec.get("error")
        job.submitted_at = float(spec.get("submitted_at",
                                          job.submitted_at))
        job.started_at = spec.get("started_at")
        job.finished_at = spec.get("finished_at")
        if state.terminal:
            job.done.set()
        return job
