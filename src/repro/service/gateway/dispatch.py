"""Op dispatch: protocol requests -> :class:`ConversionService` calls.

Two entry points share one op switch:

* :meth:`Dispatcher.handle_message` — the synchronous dispatch used by
  the in-process compatibility path (``ServiceDaemon.handle_message``)
  and, via ``run_in_executor``, by the async path for ops that touch
  service locks.  It never raises; service errors become failure
  envelopes.
* :meth:`Dispatcher.dispatch` — the async path the gateway sessions
  call.  Quick ops answer inline; blocking ops run on a dedicated
  executor so the event loop never stalls; ``wait`` long-polls on the
  event loop (an :mod:`asyncio` sleep loop at ``wait_poll_interval``,
  no thread parked per waiter — thousands of concurrent waiters cost
  thousands of timers, not thousands of threads); ``submit`` passes
  through admission control first and is refused with an explicit
  ``overloaded`` error at the limit.

Every async request is wrapped in a ``gateway.<op>`` tracing span
(free when tracing is disabled) and timed into the
``gateway_request_seconds`` metric.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ...errors import FaultInjectedError, JobNotFoundError, ReproError
from ...runtime import faults
from ...runtime.metrics import ServiceMetrics
from ...runtime.tracing import get_tracer
from .. import protocol
from .admission import AdmissionController
from .session import Session


class Dispatcher:
    """Routes protocol ops to a service behind admission control.

    Parameters
    ----------
    service:
        A :class:`~repro.service.server.ConversionService` (or any
        object with its ``submit/status/wait/cancel/trace/
        metrics_snapshot`` surface plus a ``pool`` attribute).
    admission:
        The gateway's :class:`AdmissionController`.
    stop_callback:
        Called (on a fresh thread) when a ``shutdown`` op is accepted.
    wait_poll_interval:
        Event-loop poll period for long-poll ``wait`` ops.
    executor_threads:
        Size of the dispatch thread pool backing ``run_in_executor``.
    """

    def __init__(self, service: Any, admission: AdmissionController,
                 stop_callback: Callable[[], None] | None = None,
                 wait_poll_interval: float = 0.02,
                 executor_threads: int = 8) -> None:
        self.service = service
        self.admission = admission
        self.metrics: ServiceMetrics = service.metrics
        self._stop_callback = stop_callback
        self._wait_poll_interval = wait_poll_interval
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="repro-gateway-dispatch")

    def close(self) -> None:
        """Release the dispatch thread pool."""
        self._executor.shutdown(wait=False)

    # -- async path (gateway sessions) ------------------------------

    async def dispatch(self, session: Session,
                       message: dict[str, Any]) -> dict[str, Any]:
        """Handle one request frame; never raises."""
        op = message.get("op")
        self.metrics.inc("gateway_requests_total")
        with self.metrics.timed("gateway_request_seconds"), \
                get_tracer().span(
                    f"gateway.{op or 'unknown'}", "gateway",
                    args={"session": session.session_id,
                          "transport": session.transport}):
            try:
                faults.fire("gateway.dispatch")
                return await self._dispatch_op(op, message)
            except FaultInjectedError as exc:
                # Structured surface for armed faults: the client gets
                # a machine-readable code, the session stays alive.
                return protocol.error_response(
                    str(exc), code=protocol.CODE_FAULT_INJECTED)
            except Exception as exc:  # noqa: BLE001 — session survives
                return protocol.error_response(
                    f"internal error handling {op!r}: "
                    f"{type(exc).__name__}: {exc}")

    async def _dispatch_op(self, op: str | None,
                           message: dict[str, Any]) -> dict[str, Any]:
        if op == "ping":
            return protocol.ok_response(pong=True)
        if op == "wait":
            return await self._wait(message)
        if op == "shutdown":
            # The session writes the response first, then triggers
            # request_stop() — see the gateway's write loop.
            return protocol.ok_response(stopping=True)
        if op == "submit":
            refusal = self.admission.try_admit()
            if refusal is not None:
                return protocol.overloaded_response(refusal)
            try:
                return await self._in_executor(message)
            finally:
                self.admission.release()
        return await self._in_executor(message)

    async def _in_executor(self,
                           message: dict[str, Any]) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self.handle_message, message)

    async def _wait(self, message: dict[str, Any]) -> dict[str, Any]:
        """Server-side long poll: resolve on the event loop, cheaply.

        Holds the request until the job is terminal or *timeout*
        elapses, then returns the snapshot either way (mirroring
        ``ConversionService.wait``).  No executor thread is parked —
        the waiter is an asyncio sleep loop.
        """
        try:
            job_id = message["job_id"]
        except KeyError:
            return protocol.error_response(
                "request is missing field 'job_id'",
                code=protocol.CODE_BAD_REQUEST)
        try:
            job = self.service.pool.get(job_id)
        except JobNotFoundError as exc:
            return protocol.error_response(
                str(exc), code=protocol.CODE_JOB_NOT_FOUND)
        timeout = message.get("timeout")
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None \
            else loop.time() + float(timeout)
        while not job.done.is_set():
            if deadline is None:
                await asyncio.sleep(self._wait_poll_interval)
                continue
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            await asyncio.sleep(min(self._wait_poll_interval,
                                    remaining))
        return protocol.ok_response(job=job.to_dict())

    def request_stop(self) -> None:
        """Run the stop callback on its own thread (a shutdown op must
        not stop the gateway from inside the event loop)."""
        if self._stop_callback is not None:
            threading.Thread(target=self._stop_callback,
                             name="repro-gateway-stop",
                             daemon=True).start()

    # -- sync path (compat + executor target) -----------------------

    def handle_message(self,
                       message: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one protocol request synchronously; never raises.

        This is the original ``ServiceDaemon.handle_message`` contract:
        ``wait`` blocks the calling thread and ``shutdown`` fires the
        stop callback directly.
        """
        op = message.get("op")
        try:
            if op == "ping":
                return protocol.ok_response(pong=True)
            if op == "submit":
                job = self.service.submit(
                    kind=message.get("kind", "convert"),
                    params=message.get("params", {}),
                    priority=int(message.get("priority", 0)),
                    timeout=message.get("timeout"),
                    max_retries=int(message.get("max_retries", 0)),
                    backoff=float(message.get("backoff", 0.1)))
                return protocol.ok_response(job=job.to_dict())
            if op == "status":
                return protocol.ok_response(
                    jobs=self.service.status(message.get("job_id")))
            if op == "wait":
                return protocol.ok_response(job=self.service.wait(
                    message["job_id"], message.get("timeout")))
            if op == "cancel":
                return protocol.ok_response(
                    cancelled=self.service.cancel(message["job_id"]))
            if op == "trace":
                return protocol.ok_response(
                    spans=self.service.trace(message["job_id"]))
            if op == "metrics":
                return protocol.ok_response(
                    metrics=self.service.metrics_snapshot())
            if op == "shutdown":
                self.request_stop()
                return protocol.ok_response(stopping=True)
            return protocol.error_response(
                f"unknown op {op!r}; choose from {protocol.OPS}",
                code=protocol.CODE_UNKNOWN_OP)
        except KeyError as exc:
            return protocol.error_response(
                f"request is missing field {exc.args[0]!r}",
                code=protocol.CODE_BAD_REQUEST)
        except JobNotFoundError as exc:
            return protocol.error_response(
                str(exc), code=protocol.CODE_JOB_NOT_FOUND)
        except FaultInjectedError as exc:
            return protocol.error_response(
                str(exc), code=protocol.CODE_FAULT_INJECTED)
        except ReproError as exc:
            return protocol.error_response(str(exc))
