"""Per-connection session state for the gateway.

A :class:`Session` tracks one accepted connection — unix-socket or
TCP — for the life of the connection: identity (id, transport, peer),
activity timestamps driving keepalive pings and the idle timeout, and
counters that feed the ``gateway_*`` metrics.  The gateway's
connection handler owns the I/O; the session is plain bookkeeping so
it can be snapshotted for diagnostics without touching the event
loop.

Request pipelining is bounded per connection: the handler stops
reading new frames once ``max_inflight`` ops are being processed, so
one greedy connection exerts TCP backpressure on itself instead of
flooding the dispatcher.  Responses are always written in request
order — the wire contract stays strict request/response even when the
ops behind it run concurrently.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

_session_counter = itertools.count(1)


def next_session_id() -> str:
    """Monotonic process-local session id (``sess-000001``, ...)."""
    return f"sess-{next(_session_counter):06d}"


@dataclass
class Session:
    """Bookkeeping for one gateway connection."""

    transport: str                      # "unix" | "tcp"
    peer: str = ""
    max_inflight: int = 1
    session_id: str = field(default_factory=next_session_id)
    opened_at: float = field(default_factory=time.time)

    #: Monotonic time of the last complete frame received.
    last_frame_at: float = field(default_factory=time.monotonic)
    requests: int = 0
    responses: int = 0
    bad_frames: int = 0
    pings_sent: int = 0
    closed: bool = False

    def note_frame(self) -> None:
        """Record arrival of one well-formed frame."""
        self.requests += 1
        self.last_frame_at = time.monotonic()

    def idle_for(self) -> float:
        """Seconds since the last complete frame."""
        return time.monotonic() - self.last_frame_at

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot for diagnostics."""
        return {
            "session_id": self.session_id,
            "transport": self.transport,
            "peer": self.peer,
            "opened_at": self.opened_at,
            "requests": self.requests,
            "responses": self.responses,
            "bad_frames": self.bad_frames,
            "pings_sent": self.pings_sent,
            "closed": self.closed,
        }
