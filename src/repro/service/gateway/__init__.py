"""Async gateway subsystem for the conversion service.

Layered front door replacing the blocking thread-per-connection
daemon: transport (:mod:`.framing` + the asyncio servers in
:mod:`.server`), session (:mod:`.session`), dispatch
(:mod:`.dispatch`) and admission control (:mod:`.admission`).  See
``docs/service.md`` for the architecture and backpressure semantics.
"""

from .admission import AdmissionController
from .dispatch import Dispatcher
from .framing import FrameError, FrameReader
from .server import GatewayConfig, GatewayServer
from .session import Session

__all__ = [
    "AdmissionController",
    "Dispatcher",
    "FrameError", "FrameReader",
    "GatewayConfig", "GatewayServer",
    "Session",
]
