"""Length-aware async framing for the line-JSON protocol.

The wire format is the one defined in :mod:`repro.service.protocol`
(one JSON object per newline-terminated line, ``MAX_LINE`` cap); this
module adds the asyncio reader side with the robustness the blocking
``readline`` path never had:

* an **oversized** line (> ``MAX_LINE`` bytes before the newline) is
  discarded up to and including its terminating newline and reported
  as a :class:`FrameError` — the stream stays synchronized and the
  session survives;
* **malformed JSON** raises :class:`FrameError` with the decode detail
  and likewise leaves the stream usable;
* clean EOF returns ``None``; EOF in the middle of a line decodes the
  partial line if it happens to be valid JSON (mirroring the blocking
  reader), else reports a truncated frame.

The reader keeps its own buffer rather than using
``StreamReader.readuntil`` so that a cancelled read (the session's
keepalive timeout) never loses buffered bytes.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ...errors import ProtocolError
from .. import protocol

#: Bytes pulled from the transport per read.
_CHUNK = 1 << 16


class FrameError(Exception):
    """One frame was oversized or malformed; the stream is still
    synchronized and the next :meth:`FrameReader.read_frame` call will
    see the following line."""


class FrameReader:
    """Incremental line-JSON frame reader over an asyncio stream.

    Parameters
    ----------
    reader:
        The connection's :class:`asyncio.StreamReader`.
    max_line:
        Per-frame byte cap (defaults to :data:`protocol.MAX_LINE`).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 max_line: int = protocol.MAX_LINE) -> None:
        self._reader = reader
        self._max_line = max_line
        self._buf = bytearray()
        self._eof = False

    async def read_frame(self) -> dict[str, Any] | None:
        """One decoded frame; ``None`` on EOF; :class:`FrameError` on a
        bad frame (stream remains usable afterwards)."""
        while True:
            newline = self._buf.find(b"\n")
            if newline > self._max_line:
                del self._buf[:newline + 1]
                raise FrameError(
                    f"frame of {newline} bytes exceeds the "
                    f"{self._max_line}-byte line cap")
            if newline >= 0:
                line = bytes(self._buf[:newline])
                del self._buf[:newline + 1]
                return self._decode(line)
            if len(self._buf) > self._max_line:
                discarded = await self._discard_line()
                raise FrameError(
                    f"frame of {discarded} bytes exceeds the "
                    f"{self._max_line}-byte line cap")
            if self._eof:
                if not self._buf:
                    return None
                line = bytes(self._buf)
                self._buf.clear()
                return self._decode(line)
            chunk = await self._reader.read(_CHUNK)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)

    def _decode(self, line: bytes) -> dict[str, Any]:
        try:
            return protocol.decode(line)
        except ProtocolError as exc:
            raise FrameError(str(exc)) from None

    async def _discard_line(self) -> int:
        """Drop buffered + incoming bytes through the next newline.

        Returns the number of bytes the oversized frame occupied (may
        undercount if EOF cut it short — the count is for the error
        message only).
        """
        discarded = 0
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                discarded += newline
                del self._buf[:newline + 1]
                return discarded
            discarded += len(self._buf)
            self._buf.clear()
            if self._eof:
                return discarded
            chunk = await self._reader.read(_CHUNK)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)
