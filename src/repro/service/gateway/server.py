"""The async gateway: asyncio front door for the conversion service.

One :class:`GatewayServer` multiplexes every client connection —
over the local unix socket, over TCP (``--listen HOST:PORT``), or
both — onto a single event loop running on a background thread.  The
design follows the paper's decomposition discipline applied to the
service's front door: ingest (frame reading), dispatch (op handling)
and processing (worker pool) never block each other.

* **Transport** — ``asyncio.start_server`` / ``start_unix_server``
  behind the shared line-JSON framing codec
  (:mod:`repro.service.gateway.framing`).
* **Session** — per-connection state (:mod:`.session`): keepalive
  ping events on idle, optional idle disconnect, and a
  ``max_inflight_per_conn`` bound enforced by *not reading* further
  frames — backpressure instead of buffering.  Ops on one connection
  run concurrently but responses are written in request order.
* **Dispatch** — :class:`~.dispatch.Dispatcher` routes ops; blocking
  service calls run on a thread pool via ``run_in_executor`` so the
  event loop never stalls.
* **Admission** — :class:`~.admission.AdmissionController` bounds
  pending jobs and turns overload into explicit ``overloaded``
  responses.  :meth:`GatewayServer.stop` drains gracefully: stop
  accepting, refuse new submits, finish in-flight ops and jobs, then
  close.

Gateway state is surfaced through the shared
:class:`~repro.runtime.metrics.ServiceMetrics` (``gateway_*``
counters/gauges/timers) and per-request ``gateway.<op>`` tracing
spans.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
from dataclasses import dataclass
from typing import Any

from ...errors import ServiceError
from .. import protocol
from .admission import AdmissionController
from .dispatch import Dispatcher
from .framing import FrameError, FrameReader
from .session import Session

#: Queue sentinel closing a session's write loop.
_CLOSE = object()


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of the gateway front door.

    Attributes
    ----------
    max_inflight_per_conn:
        Ops processed concurrently per connection before the session
        stops reading further frames (pipelining bound).
    max_pending_jobs:
        Admission bound on pending jobs; ``None`` = unbounded.
    keepalive_interval:
        Seconds of read idleness before the session emits a
        ``{"event": "ping"}`` keepalive frame; ``None`` disables.
    idle_timeout:
        Close a connection after this many seconds without a complete
        frame; ``None`` keeps idle connections forever.
    write_timeout:
        Per-response write/drain deadline; a peer that stops reading
        is disconnected instead of wedging the session.
    wait_poll_interval:
        Event-loop poll period resolving long-poll ``wait`` ops.
    drain_timeout:
        Upper bound on waiting for in-flight ops and jobs during
        graceful shutdown.
    dispatch_threads:
        Thread-pool size backing ``run_in_executor`` dispatch.
    """

    max_inflight_per_conn: int = 32
    max_pending_jobs: int | None = 1024
    keepalive_interval: float | None = 15.0
    idle_timeout: float | None = None
    write_timeout: float = 30.0
    wait_poll_interval: float = 0.02
    drain_timeout: float = 10.0
    dispatch_threads: int = 8


class GatewayServer:
    """Asyncio gateway serving a :class:`ConversionService` over unix
    socket and/or TCP.

    Parameters
    ----------
    service:
        The service façade ops are routed to.
    unix_path:
        Unix socket path to listen on (``None`` = no unix listener).
    tcp_address:
        ``(host, port)`` to listen on (``None`` = no TCP listener).
        Port 0 binds an ephemeral port; read it back from
        :attr:`tcp_address` after :meth:`start`.
    config:
        :class:`GatewayConfig` tunables.
    stop_callback:
        Invoked (on a fresh thread) when a client sends ``shutdown``;
        defaults to :meth:`stop`.  The daemon passes its own stop so
        the service and socket file are torn down too.
    """

    def __init__(self, service: Any,
                 unix_path: str | os.PathLike[str] | None = None,
                 tcp_address: tuple[str, int] | None = None,
                 config: GatewayConfig | None = None,
                 stop_callback=None) -> None:
        if unix_path is None and tcp_address is None:
            raise ServiceError(
                "gateway needs a unix socket path and/or a TCP "
                "address to listen on")
        self.service = service
        self.config = config if config is not None else GatewayConfig()
        self.unix_path = None if unix_path is None else os.fspath(unix_path)
        self._tcp_requested = tcp_address
        self.tcp_address: tuple[str, int] | None = None
        self.metrics = service.metrics
        self.admission = AdmissionController(
            self.config.max_pending_jobs,
            self._queued_count, self.metrics)
        self.dispatcher = Dispatcher(
            service, self.admission,
            stop_callback=(stop_callback if stop_callback is not None
                           else self.stop),
            wait_poll_interval=self.config.wait_poll_interval,
            executor_threads=self.config.dispatch_threads)

        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: BaseException | None = None
        self._stop_lock = threading.Lock()
        self._stop_requested = False
        self._stop_event: asyncio.Event | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight_ops: set[asyncio.Task] = set()
        self._session_queues: dict[str, asyncio.Queue] = {}
        self.sessions: dict[str, Session] = {}

    def _queued_count(self) -> int:
        pool = getattr(self.service, "pool", None)
        return pool.queued_count() if pool is not None else 0

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        """Bind the listeners and serve on a background thread.

        Returns once every requested listener is bound (so an
        in-process client can connect immediately) or raises the
        startup error.
        """
        if self._thread is not None:
            raise ServiceError("gateway already started")
        self._thread = threading.Thread(target=self._loop_main,
                                        name="repro-gateway",
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._finished.wait(5)
            raise ServiceError(
                f"gateway failed to start: {self._startup_error}") \
                from self._startup_error

    def join(self, timeout: float | None = None) -> None:
        """Block until the gateway stops (KeyboardInterrupt-friendly).

        Waits on an Event the loop thread sets *after* its cleanup
        (socket unlink) rather than on ``Thread.join``: a
        KeyboardInterrupt landing inside an earlier ``Thread.join``
        can falsely mark a live thread as stopped (bpo-45274's
        interrupted-``_wait_for_tstate_lock`` recovery), which would
        make every later join return before shutdown actually ran.
        """
        if self._thread is None:
            return
        if timeout is not None:
            self._finished.wait(timeout)
            return
        while not self._finished.wait(0.2):
            pass

    def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`stop`."""
        if self._thread is None:
            self.start()
        self.join()

    def stop(self) -> None:
        """Graceful drain: stop accepting, refuse new submits, finish
        in-flight ops and jobs (bounded by ``drain_timeout``), close.

        Idempotent and callable from any thread except the event-loop
        thread itself (the shutdown op hops to a fresh thread first).
        """
        with self._stop_lock:
            if self._stop_requested:
                self.join(timeout=self.config.drain_timeout + 5)
                return
            self._stop_requested = True
        self.admission.start_draining()
        loop = self._loop
        if loop is not None and self._stop_event is not None \
                and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._stop_event.set)
        self.join(timeout=self.config.drain_timeout + 5)
        self._stopped.set()

    # -- event loop body --------------------------------------------

    def _loop_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()
            if self.unix_path and os.path.exists(self.unix_path):
                with contextlib.suppress(OSError):
                    os.unlink(self.unix_path)
            # Signals join()/stop() that shutdown fully completed —
            # set strictly after the unlink above.
            self._finished.set()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            if self.unix_path is not None:
                if os.path.exists(self.unix_path):
                    os.unlink(self.unix_path)
                server = await asyncio.start_unix_server(
                    self._accept_unix, path=self.unix_path,
                    backlog=512)
                self._servers.append(server)
            if self._tcp_requested is not None:
                host, port = self._tcp_requested
                server = await asyncio.start_server(
                    self._accept_tcp, host=host, port=port,
                    backlog=512)
                self._servers.append(server)
                bound = server.sockets[0].getsockname()
                self.tcp_address = (bound[0], bound[1])
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self._shutdown()

    def _accept_unix(self, reader, writer) -> None:
        self._accept(reader, writer, "unix")

    def _accept_tcp(self, reader, writer) -> None:
        self._accept(reader, writer, "tcp")

    def _accept(self, reader, writer, transport: str) -> None:
        task = asyncio.ensure_future(
            self._serve_connection(reader, writer, transport))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    # -- one connection ---------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                transport: str) -> None:
        peer = writer.get_extra_info("peername")
        session = Session(
            transport=transport,
            peer="" if peer is None else str(peer),
            max_inflight=self.config.max_inflight_per_conn)
        self.sessions[session.session_id] = session
        self.metrics.inc("gateway_connections_total")
        self.metrics.set_gauge("gateway_connections_open",
                               len(self.sessions))
        frames = FrameReader(reader)
        responses: asyncio.Queue = asyncio.Queue()
        self._session_queues[session.session_id] = responses
        inflight = asyncio.Semaphore(self.config.max_inflight_per_conn)
        write_task = asyncio.ensure_future(
            self._write_loop(session, writer, responses))
        try:
            await self._read_loop(session, frames, responses, inflight)
        finally:
            await responses.put(_CLOSE)
            with contextlib.suppress(Exception):
                await asyncio.wait_for(
                    write_task, self.config.write_timeout * 2)
            write_task.cancel()
            session.closed = True
            self._session_queues.pop(session.session_id, None)
            self.sessions.pop(session.session_id, None)
            self.metrics.set_gauge("gateway_connections_open",
                                   len(self.sessions))
            with contextlib.suppress(Exception):
                writer.close()

    def _read_tick(self) -> float | None:
        """Read timeout slicing idleness into keepalive/idle checks."""
        ticks = [t for t in (self.config.keepalive_interval,
                             self.config.idle_timeout) if t is not None]
        return min(ticks) if ticks else None

    async def _read_loop(self, session: Session, frames: FrameReader,
                         responses: asyncio.Queue,
                         inflight: asyncio.Semaphore) -> None:
        tick = self._read_tick()
        while not session.closed:
            try:
                if tick is None:
                    frame = await frames.read_frame()
                else:
                    frame = await asyncio.wait_for(frames.read_frame(),
                                                   tick)
            except asyncio.TimeoutError:
                idle = session.idle_for()
                if self.config.idle_timeout is not None \
                        and idle >= self.config.idle_timeout:
                    self.metrics.inc("gateway_idle_disconnects")
                    return
                if self.config.keepalive_interval is not None:
                    session.pings_sent += 1
                    self.metrics.inc("gateway_keepalive_pings")
                    await responses.put(protocol.event("ping"))
                continue
            except FrameError as exc:
                session.bad_frames += 1
                self.metrics.inc("gateway_bad_frames")
                await responses.put(
                    protocol.bad_frame_response(str(exc)))
                continue
            except (ConnectionError, OSError):
                return
            if frame is None:                    # clean EOF
                return
            session.note_frame()
            await inflight.acquire()
            task = asyncio.ensure_future(
                self._run_op(session, frame, inflight))
            self._inflight_ops.add(task)
            self.metrics.set_gauge("gateway_inflight_ops",
                                   len(self._inflight_ops))
            task.add_done_callback(self._op_done)
            await responses.put(task)

    def _op_done(self, task: asyncio.Task) -> None:
        self._inflight_ops.discard(task)
        self.metrics.set_gauge("gateway_inflight_ops",
                               len(self._inflight_ops))

    async def _run_op(self, session: Session, frame: dict[str, Any],
                      inflight: asyncio.Semaphore) -> dict[str, Any]:
        try:
            return await self.dispatcher.dispatch(session, frame)
        finally:
            inflight.release()

    async def _write_loop(self, session: Session,
                          writer: asyncio.StreamWriter,
                          responses: asyncio.Queue) -> None:
        try:
            while True:
                item = await responses.get()
                if item is _CLOSE:
                    return
                if isinstance(item, asyncio.Task):
                    try:
                        response = await item
                    except asyncio.CancelledError:
                        return
                else:
                    response = item
                writer.write(protocol.encode(response))
                await asyncio.wait_for(writer.drain(),
                                       self.config.write_timeout)
                session.responses += 1
                if response.get("ok") and response.get("stopping"):
                    self.dispatcher.request_stop()
                    return
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return
        finally:
            session.closed = True
            with contextlib.suppress(Exception):
                writer.close()

    # -- graceful drain ---------------------------------------------

    async def _shutdown(self) -> None:
        timeout = self.config.drain_timeout
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        # Let dispatched ops finish, then cancel stragglers (e.g.
        # indefinite long-poll waits).
        if self._inflight_ops:
            await asyncio.wait(set(self._inflight_ops),
                               timeout=timeout)
        for task in list(self._inflight_ops):
            task.cancel()
        # Finish in-flight jobs: every job already admitted to the
        # pool runs to a terminal state (bounded by the drain budget).
        pool = getattr(self.service, "pool", None)
        if pool is not None and hasattr(pool, "wait_all"):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: pool.wait_all(timeout=timeout))
        for queue in list(self._session_queues.values()):
            queue.put_nowait(_CLOSE)
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=5)
        for task in list(self._conn_tasks):
            task.cancel()
        self.dispatcher.close()
