"""Admission control: bounded pending work instead of silent buffering.

The paper's service front door must stay responsive under overload —
the failure mode to prevent is an unbounded queue that accepts every
submit and then serves none of them well.  :class:`AdmissionController`
bounds the number of *pending* jobs (queued in the worker pool plus
submits currently in flight through the gateway) and rejects the rest
with an explicit ``overloaded`` protocol error the client can see and
retry, never a silent drop.

It is also the drain switch for graceful shutdown: once
:meth:`start_draining` is called, every new submit is refused (again
explicitly) while already-admitted work runs to completion.

Thread-safe: admission decisions happen on the event loop while
releases arrive from executor threads.
"""

from __future__ import annotations

import threading

from ...runtime.metrics import ServiceMetrics


class AdmissionController:
    """Bounded-pending-jobs gate in front of the worker pool.

    Parameters
    ----------
    max_pending_jobs:
        Cap on queued-but-not-running jobs; ``None`` disables the
        bound (drain rejection still applies).
    queued_count:
        Zero-argument callable returning the worker pool's current
        queued-job count (:meth:`WorkerPool.queued_count`).
    metrics:
        Shared :class:`ServiceMetrics`; admission state is surfaced as
        ``gateway_pending_jobs`` / ``gateway_draining`` gauges and the
        ``gateway_rejected_overloaded`` counter.
    """

    def __init__(self, max_pending_jobs: int | None,
                 queued_count, metrics: ServiceMetrics) -> None:
        self.max_pending_jobs = max_pending_jobs
        self._queued_count = queued_count
        self.metrics = metrics
        self._lock = threading.Lock()
        self._inflight_submits = 0
        self._draining = False
        self.metrics.set_gauge("gateway_draining", 0)

    @property
    def draining(self) -> bool:
        """Whether the gateway is refusing new work for shutdown."""
        with self._lock:
            return self._draining

    def start_draining(self) -> None:
        """Refuse all new submits from now on (graceful shutdown)."""
        with self._lock:
            self._draining = True
        self.metrics.set_gauge("gateway_draining", 1)

    def try_admit(self) -> str | None:
        """Try to admit one submit.

        Returns ``None`` when admitted (caller must :meth:`release`
        after handing the job to the pool) or a human-readable refusal
        reason.  The in-flight count closes the race between
        concurrent submitters — two submits admitted together both
        count against the bound even before either reaches the pool.
        """
        with self._lock:
            if self._draining:
                self.metrics.inc("gateway_rejected_overloaded")
                return ("service is draining for shutdown; "
                        "not accepting new jobs")
            pending = self._queued_count() + self._inflight_submits
            if self.max_pending_jobs is not None \
                    and pending >= self.max_pending_jobs:
                self.metrics.inc("gateway_rejected_overloaded")
                return (f"{pending} jobs pending >= limit "
                        f"{self.max_pending_jobs}; retry later")
            self._inflight_submits += 1
            self.metrics.set_gauge("gateway_pending_jobs", pending + 1)
            return None

    def release(self) -> None:
        """One admitted submit has reached (or failed to reach) the
        pool; it no longer counts as gateway-in-flight."""
        with self._lock:
            self._inflight_submits = max(0, self._inflight_submits - 1)
            pending = self._queued_count() + self._inflight_submits
            self.metrics.set_gauge("gateway_pending_jobs", pending)
