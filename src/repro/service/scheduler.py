"""Thread-based job scheduler: priority queue + worker pool.

The pool drains a priority queue (higher :attr:`Job.priority` first,
FIFO among equals) with N worker threads.  Each attempt of a job runs
on its own thread so a per-job *timeout* can be enforced with
``join(timeout)``; a timed-out attempt's thread is abandoned (daemon)
and the job either retries with exponential backoff or fails.  Retries
are parked in a delay heap and become eligible again at
``backoff * 2**(attempt-1)`` seconds.

Cancellation is immediate for queued jobs.  For running jobs the
:attr:`Job.cancel_requested` event is set; the runner may poll it
cooperatively, and whatever the attempt produces is discarded — the job
lands in ``CANCELLED`` rather than ``DONE``/``FAILED``.

All queue/state mutation happens under one condition variable; the
runner itself executes outside the lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable

from ..errors import JobNotFoundError, ReproError, ServiceError
from ..runtime import faults
from ..runtime.metrics import ServiceMetrics
from ..runtime.tracing import Tracer
from .jobs import Job, JobState
from .journal import JobJournal


class WorkerPool:
    """Priority-queue scheduler executing jobs on worker threads.

    Parameters
    ----------
    runner:
        ``runner(job) -> result`` callable doing the actual work.  It
        runs outside the scheduler lock and may raise; the exception
        text becomes the job error.
    workers:
        Number of concurrent worker threads.
    metrics:
        Optional shared :class:`ServiceMetrics`; one is created when
        omitted.
    trace_jobs:
        Record a span tree per job attempt into :attr:`Job.trace` and
        mirror span durations into ``span.<name>`` metric timers.  On
        by default; disable for benchmark pools where the per-span
        bookkeeping would distort measurements.
    stats_source:
        Optional zero-argument callable returning a flat name->number
        dict (e.g. :func:`~repro.runtime.executor.shared_executor_stats`);
        after every job attempt its values are mirrored into
        ``executor_<name>`` gauges, so the metrics snapshot shows the
        shared worker pool's reuse counters.
    journal:
        Optional :class:`~repro.service.journal.JobJournal`.  When
        set, every submission is journaled *before* it is enqueued
        (write-ahead: a journal failure fails the submit) and every
        state transition is journaled as it happens (best-effort: a
        transition-append failure increments
        ``journal_append_errors`` instead of killing the worker —
        the worst case is a replay re-running an already-finished
        job).
    """

    def __init__(self, runner: Callable[[Job], Any], workers: int = 2,
                 metrics: ServiceMetrics | None = None,
                 trace_jobs: bool = True,
                 stats_source: Callable[[], dict] | None = None,
                 journal: JobJournal | None = None) -> None:
        if workers < 1:
            raise ServiceError(f"workers {workers} must be >= 1")
        self._runner = runner
        self._trace_jobs = trace_jobs
        self._stats_source = stats_source
        self._journal = journal
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._ready: list[tuple[int, int, Job]] = []     # (-prio, seq, job)
        self._delayed: list[tuple[float, int, Job]] = []  # (due, seq, job)
        self._jobs: dict[str, Job] = {}
        self._stopping = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission and queries -------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue *job*; returns it for chaining."""
        with self._cond:
            if self._stopping:
                raise ServiceError("worker pool is shut down")
            if job.job_id in self._jobs:
                raise ServiceError(f"duplicate job id {job.job_id}")
            if job.state is not JobState.QUEUED:
                raise ServiceError(
                    f"job {job.job_id} submitted in state "
                    f"{job.state.value}")
            if self._journal is not None:
                # Write-ahead: the job exists durably before it is
                # runnable.  A journal failure refuses the submit —
                # accepting work we cannot recover would silently
                # reintroduce the bug the journal fixes.
                self._journal.append_submit(job)
            self._jobs[job.job_id] = job
            heapq.heappush(self._ready,
                           (-job.priority, next(self._seq), job))
            self.metrics.inc("jobs_submitted")
            self._update_depth_gauge()
            self._cond.notify()
        return job

    def get(self, job_id: str) -> Job:
        """The job named *job_id*, or raise :class:`JobNotFoundError`."""
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobNotFoundError(f"unknown job id {job_id!r}") \
                    from None

    def jobs(self) -> list[Job]:
        """All known jobs in submission order."""
        with self._cond:
            return sorted(self._jobs.values(),
                          key=lambda j: j.submitted_at)

    def queued_count(self) -> int:
        """Jobs currently waiting to run (admission-control input)."""
        with self._cond:
            return sum(1 for j in self._jobs.values()
                       if j.state is JobState.QUEUED)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.

        Queued jobs are cancelled immediately; running jobs get their
        :attr:`Job.cancel_requested` event set and become ``CANCELLED``
        when the current attempt returns.  Returns ``False`` when the
        job had already finished.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            if job.state.terminal:
                return False
            job.cancel_requested.set()
            if job.state is JobState.QUEUED:
                self._discard(job)
                self._finish(job, JobState.CANCELLED)
            return True

    def wait_all(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is terminal."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for job in self.jobs():
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not job.wait(remaining):
                return False
        return True

    def shutdown(self, wait: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the workers; queued jobs that never ran stay QUEUED.

        Parked retries are different: their delay-heap entries would
        never become due for a worker again, leaving them orphaned in
        ``QUEUED`` and hanging any :meth:`wait_all` caller.  The heap
        is therefore drained deterministically — every still-queued
        parked retry is finished as ``CANCELLED``.
        """
        with self._cond:
            self._stopping = True
            while self._delayed:
                _, _, job = heapq.heappop(self._delayed)
                if job.state is JobState.QUEUED:
                    self._finish(job, JobState.CANCELLED)
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout)

    # -- crash recovery ---------------------------------------------

    def recover(self, specs: list[dict]) -> dict[str, int]:
        """Adopt journaled job specs after a restart.

        Terminal jobs are registered so status/wait/trace queries keep
        answering for them.  ``QUEUED`` jobs go straight back on the
        ready heap under their original ids.  A job that was
        ``RUNNING`` when the process died had its attempt interrupted;
        that attempt *counts* (``attempts`` was journaled when it
        started), so the job is re-queued with the normal exponential
        backoff when retries remain and fails with an explicit error
        otherwise.  Returns per-category counts.
        """
        counts = {"terminal": 0, "requeued": 0, "rerun": 0,
                  "failed": 0, "invalid": 0}
        ordered = sorted(specs, key=lambda s: s.get("submitted_at", 0))
        with self._cond:
            for spec in ordered:
                try:
                    job = Job.from_spec(spec)
                except ServiceError:
                    # Valid JSON, bad semantics (unknown state,
                    # missing kind, ...).  The journal's contract is
                    # corruption-is-never-fatal: skip and count,
                    # mirroring how replay() skips bad_lines.
                    counts["invalid"] += 1
                    self.metrics.inc("jobs_recover_errors")
                    continue
                if job.job_id in self._jobs:
                    raise ServiceError(
                        f"duplicate job id {job.job_id} in recovery")
                self._jobs[job.job_id] = job
                if job.state.terminal:
                    counts["terminal"] += 1
                    continue
                if job.state is JobState.QUEUED:
                    heapq.heappush(
                        self._ready,
                        (-job.priority, next(self._seq), job))
                    counts["requeued"] += 1
                    continue
                # Interrupted mid-attempt (RUNNING at crash time).
                job.error = (f"attempt {job.attempts} interrupted by "
                             f"service restart")
                if job.attempts_left > 0:
                    delay = job.backoff * 2 ** (job.attempts - 1)
                    job.transition(JobState.QUEUED)
                    self._journal_transition(job)
                    heapq.heappush(
                        self._delayed,
                        (time.monotonic() + delay, next(self._seq),
                         job))
                    counts["rerun"] += 1
                else:
                    self._finish(job, JobState.FAILED)
                    counts["failed"] += 1
            self._update_depth_gauge()
            self._cond.notify_all()
        recovered = counts["requeued"] + counts["rerun"]
        self.metrics.inc("jobs_recovered", recovered)
        self.metrics.inc("jobs_recovered_failed", counts["failed"])
        return counts

    # -- journal compaction -----------------------------------------

    def compact_journal(self, force: bool = False) -> bool:
        """Compact the journal against a consistent jobs snapshot.

        The snapshot and the rewrite happen inside one critical
        section holding the scheduler lock first and the journal lock
        second — the same order every append site uses (submit and
        transition appends run under ``self._cond``).  Holding the
        scheduler lock across the rewrite is what makes the snapshot
        safe: a concurrent :meth:`submit` cannot append its record to
        the old file after the snapshot was taken, so compaction can
        never erase an acknowledged submit.  Returns whether a
        compaction ran.
        """
        if self._journal is None:
            return False
        with self._cond:
            jobs = sorted(self._jobs.values(),
                          key=lambda j: j.submitted_at)
            if force:
                self._journal.compact(jobs)
                return True
            return self._journal.maybe_compact(jobs)

    # -- worker internals -------------------------------------------

    def _journal_transition(self, job: Job) -> None:
        # Called with the lock held, right after a state change.
        # Best-effort on purpose: a worker thread must survive a
        # journal write failure (including injected ones).
        if self._journal is None:
            return
        try:
            self._journal.append_transition(job)
        except ReproError:
            self.metrics.inc("journal_append_errors")

    def _discard(self, job: Job) -> None:
        # Called with the lock held: drop *job*'s entries from both
        # heaps so a cancelled job cannot linger as a stale retry.
        ready = [entry for entry in self._ready if entry[2] is not job]
        if len(ready) != len(self._ready):
            self._ready[:] = ready
            heapq.heapify(self._ready)
        delayed = [entry for entry in self._delayed
                   if entry[2] is not job]
        if len(delayed) != len(self._delayed):
            self._delayed[:] = delayed
            heapq.heapify(self._delayed)

    def _update_depth_gauge(self) -> None:
        # Called with the lock held.
        depth = sum(1 for j in self._jobs.values()
                    if j.state is JobState.QUEUED)
        running = sum(1 for j in self._jobs.values()
                      if j.state is JobState.RUNNING)
        self.metrics.set_gauge("queue_depth", depth)
        self.metrics.set_gauge("jobs_running", running)

    def _finish(self, job: Job, state: JobState) -> None:
        # Called with the lock held; records terminal state + metrics.
        job.transition(state)
        self._journal_transition(job)
        self.metrics.inc(f"jobs_{state.value}")
        self.metrics.observe("job_wall_seconds",
                             job.finished_at - job.submitted_at)
        self._update_depth_gauge()
        self._cond.notify_all()

    def _next_job(self) -> Job | None:
        """Pop the next runnable job, or ``None`` when shutting down."""
        with self._cond:
            while True:
                now = time.monotonic()
                while self._delayed and self._delayed[0][0] <= now:
                    _, _, job = heapq.heappop(self._delayed)
                    heapq.heappush(self._ready,
                                   (-job.priority, next(self._seq), job))
                while self._ready:
                    _, _, job = heapq.heappop(self._ready)
                    if job.state is JobState.QUEUED:
                        job.attempts += 1
                        job.transition(JobState.RUNNING)
                        self._journal_transition(job)
                        self._update_depth_gauge()
                        return job
                    # Cancelled while queued: stale heap entry, skip.
                if self._stopping:
                    return None
                wait = None
                if self._delayed:
                    wait = max(0.0, self._delayed[0][0] - now)
                self._cond.wait(wait)

    def _run_attempt(self, job: Job) -> tuple[Any, BaseException | None,
                                              bool, list[dict]]:
        """Run one attempt; returns (result, exception, timed_out,
        span_dicts)."""
        box: list[Any] = [None, None, []]

        def invoke() -> Any:
            # The attempt-level fault point: armed ``exception`` makes
            # the retry/backoff path real, armed ``crash`` dies
            # mid-RUNNING so journal replay re-queues this job.
            faults.fire("scheduler.attempt")
            return self._runner(job)

        def call() -> None:
            if not self._trace_jobs:
                try:
                    box[0] = invoke()
                except BaseException as exc:  # noqa: BLE001 — reported
                    box[1] = exc
                return
            # One tracer per attempt: the converter/runtime spans of
            # this job land in an isolated tree (activate() is
            # thread-local, so concurrent jobs do not interleave).
            tracer = Tracer(enabled=True)
            try:
                with tracer.activate(), \
                        tracer.span(f"job.{job.kind}", "service",
                                    args={"job_id": job.job_id,
                                          "attempt": job.attempts}):
                    box[0] = invoke()
            except BaseException as exc:  # noqa: BLE001 — reported
                box[1] = exc
            finally:
                box[2] = [s.to_dict() for s in tracer.spans()]

        thread = threading.Thread(target=call, daemon=True,
                                  name=f"{job.job_id}-attempt"
                                       f"{job.attempts}")
        thread.start()
        thread.join(job.timeout)
        if thread.is_alive():
            # The attempt thread is abandoned; it cannot be killed
            # (and its span list must not be read while it still runs).
            return None, None, True, []
        return box[0], box[1], False, box[2]

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            if self._journal is not None \
                    and self._journal.needs_compact():
                # Opportunistic compaction between attempts.  The
                # cheap threshold pre-check keeps the common path off
                # the scheduler lock; compact_journal re-checks under
                # the lock, so two racing workers compact only once.
                try:
                    self.compact_journal()
                except ReproError:
                    self.metrics.inc("journal_compact_errors")
            result, exc, timed_out, spans = self._run_attempt(job)
            if self._stats_source is not None:
                for name, value in self._stats_source().items():
                    self.metrics.set_gauge(f"executor_{name}", value)
            with self._cond:
                if spans:
                    job.trace.extend(spans)
                    for span in spans:
                        if span.get("end") is not None:
                            self.metrics.observe(
                                f"span.{span['name']}",
                                span["end"] - span["start"])
                if job.cancel_requested.is_set():
                    self._finish(job, JobState.CANCELLED)
                    continue
                if timed_out:
                    self.metrics.inc("jobs_timed_out")
                    job.error = (f"attempt {job.attempts} timed out "
                                 f"after {job.timeout:g}s")
                elif exc is not None:
                    job.error = f"{type(exc).__name__}: {exc}"
                else:
                    job.result = result
                    job.error = None
                    self._finish(job, JobState.DONE)
                    continue
                if job.attempts_left > 0 and not self._stopping:
                    delay = job.backoff * 2 ** (job.attempts - 1)
                    job.transition(JobState.QUEUED)
                    self._journal_transition(job)
                    self.metrics.inc("jobs_retried")
                    heapq.heappush(
                        self._delayed,
                        (time.monotonic() + delay, next(self._seq), job))
                    self._update_depth_gauge()
                    self._cond.notify_all()
                elif job.attempts_left > 0:
                    # Pool is stopping: parking a retry would orphan it.
                    self._finish(job, JobState.CANCELLED)
                else:
                    self._finish(job, JobState.FAILED)
