"""Command-line interface: ``repro <subcommand>``.

Subcommands cover the whole pipeline: simulate a dataset, preprocess it
(BAMX/BAIX), convert it (fully or for one region, in parallel), build a
coverage histogram, denoise it with NL-means, and compute an FDR
threshold.  ``serve``/``submit``/``status``/``cancel`` drive the
long-lived conversion job service (:mod:`repro.service`) over a local
unix socket.  Run ``repro --help`` or ``repro <cmd> --help`` for
options.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

import numpy as np

from .errors import ReproError


def _knob_value(text: str, name: str):
    """argparse type for ``--shards``/``--batch-size``: int or 'auto'."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid {name} value {text!r}: expected a positive "
            f"integer or 'auto'") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"invalid {name} value {text!r}: must be >= 1 (or 'auto')")
    return value


def _shards_value(text: str):
    return _knob_value(text, "shards")


def _batch_size_value(text: str):
    return _knob_value(text, "batch_size")


def _maybe_tuner(args: argparse.Namespace):
    """Build an AutoTuner when auto-tuning is in play, else None.

    A persistent tuner is wanted when any knob is ``auto`` or the user
    named a model file; otherwise the converters run the static path
    (``ensure_tuner`` would still learn in memory, but without a
    ``--cost-model`` there is nothing durable to show for it).
    """
    explicit = getattr(args, "cost_model", None)
    knobs = (getattr(args, "shards", 1), getattr(args, "batch_size", 0))
    if explicit is None and "auto" not in knobs:
        return None
    from .runtime.autotune import AutoTuner, CostModel, \
        resolve_model_path
    model = CostModel(resolve_model_path(explicit))
    if model.load_error:
        print(f"warning: ignoring damaged cost model "
              f"{model.path}: {model.load_error}", file=sys.stderr)
    return AutoTuner(model)


def _parse_chroms(text: str) -> list[tuple[str, int]]:
    """Parse ``chr1:60000,chr2:40000`` into [(name, length), ...]."""
    out = []
    for part in text.split(","):
        name, _, length = part.partition(":")
        if not name or not length.isdigit() or int(length) == 0:
            raise ReproError(f"bad chromosome spec {part!r} "
                             "(want name:length with length >= 1)")
        out.append((name, int(length)))
    return out


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .simdata import build_bam_dataset, build_sam_dataset
    chroms = _parse_chroms(args.chromosomes)
    if args.output.endswith(".bam"):
        wl = build_bam_dataset(args.output, args.templates, chroms,
                               seed=args.seed, sort=not args.unsorted)
    else:
        wl = build_sam_dataset(args.output, args.templates, chroms,
                               seed=args.seed, sort=not args.unsorted)
    mapped = sum(1 for r in wl.records if r.is_mapped)
    print(f"wrote {len(wl.records)} records ({mapped} mapped) "
          f"to {args.output}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .core import BamConverter, SamConverter, parse_filter_expr
    record_filter = parse_filter_expr(args.filter) if args.filter \
        else None
    source = args.input.lower()
    tuner = _maybe_tuner(args)
    if source.endswith(".sam"):
        result = SamConverter(
            batch_size=args.batch_size,
            pipeline=args.pipeline,
            shards_per_rank=args.shards,
            tuner=tuner).convert(
                args.input, args.target, args.out_dir, args.nprocs,
                args.executor, record_filter=record_filter)
    elif source.endswith((".bamx", ".bamz", ".bamc")):
        result = BamConverter(
            batch_size=args.batch_size,
            pipeline=args.pipeline,
            shards_per_rank=args.shards,
            tuner=tuner).convert(
                args.input, args.target, args.out_dir, args.nprocs,
                args.executor, record_filter=record_filter)
    elif source.endswith(".bam"):
        from .core import PreprocArtifacts
        converter = BamConverter(batch_size=args.batch_size,
                                 pipeline=args.pipeline,
                                 shards_per_rank=args.shards,
                                 store_format=args.store_format,
                                 tuner=tuner)
        supplied = PreprocArtifacts.for_store(args.bamx, args.baix) \
            if args.bamx else None
        artifacts, pre = converter.ensure_preprocessed(
            args.input, args.work_dir or args.out_dir,
            artifacts=supplied)
        if pre is not None:
            print(f"preprocessed to {artifacts.store_path} "
                  f"({pre.total_seconds:.2f}s, {pre.records} records)")
        else:
            print(f"reusing preprocessing artifacts "
                  f"{artifacts.store_path}")
        result = converter.convert(artifacts.store_path, args.target,
                                   args.out_dir, args.nprocs,
                                   args.executor,
                                   record_filter=record_filter)
    else:
        raise ReproError(
            f"cannot tell the source format of {args.input!r}; expected a "
            f".sam, .bam, .bamx, .bamz or .bamc file")
    print(f"converted {result.records} records -> {result.emitted} "
          f"{result.target} objects in {len(result.outputs)} part files "
          f"({result.wall_seconds:.2f}s, {result.nprocs} ranks)")
    return 0


def _cmd_preprocess(args: argparse.Namespace) -> int:
    from .core import BamConverter, PreprocSamConverter
    source = args.input.lower()
    if source.endswith(".bam"):
        bamx, baix, metrics = BamConverter(
            store_format=args.store_format).preprocess(
            args.input, args.work_dir, compress=args.compress)
        print(f"sequential preprocessing: {metrics.records} records, "
              f"{metrics.total_seconds:.2f}s\n  {bamx}\n  {baix}")
    elif source.endswith(".sam"):
        paths, metrics = PreprocSamConverter(
            shards_per_rank=args.shards,
            store_format=args.store_format,
            tuner=_maybe_tuner(args)).preprocess(
            args.input, args.work_dir, args.nprocs, args.executor)
        total = sum(m.records for m in metrics)
        print(f"parallel preprocessing ({args.nprocs} ranks): "
              f"{total} records")
        for path in paths:
            print(f"  {path}")
    else:
        raise ReproError(f"expected a .sam or .bam input, got {args.input!r}")
    return 0


def _cmd_region(args: argparse.Namespace) -> int:
    from .core import BamConverter, parse_filter_expr
    record_filter = parse_filter_expr(args.filter) if args.filter \
        else None
    result = BamConverter(
        batch_size=args.batch_size,
        pipeline=args.pipeline,
        shards_per_rank=args.shards,
        tuner=_maybe_tuner(args)).convert_region(
        args.bamx, args.baix, args.region, args.target, args.out_dir,
        args.nprocs, args.executor, mode=args.mode,
        record_filter=record_filter)
    print(f"partial conversion of {args.region}: {result.records} records "
          f"-> {result.emitted} {result.target} objects "
          f"({result.wall_seconds:.2f}s, {result.nprocs} ranks)")
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    from .formats.bedgraph import write_bedgraph
    from .formats.sam import SamReader
    from .stats import histogram_from_records, histogram_from_store, \
        histogram_to_bedgraph
    if args.input.lower().endswith((".bamx", ".bamz", ".bamc")):
        from .formats.store import open_record_store
        with open_record_store(args.input) as reader:
            histos = histogram_from_store(reader, args.bin_size)
    else:
        with SamReader(args.input) as reader:
            histos = histogram_from_records(reader, reader.header,
                                            args.bin_size)
    intervals = []
    for chrom, histo in histos.items():
        intervals.extend(histogram_to_bedgraph(histo, chrom,
                                               args.bin_size))
    n = write_bedgraph(args.output, intervals)
    print(f"wrote {n} intervals over {len(histos)} chromosomes "
          f"to {args.output}")
    if args.npy:
        np.save(args.npy, np.concatenate(list(histos.values())))
        print(f"wrote dense histogram to {args.npy}")
    return 0


def _load_series(path: str) -> np.ndarray:
    if path.endswith(".npy"):
        return np.load(path)
    from .formats.bedgraph import read_bedgraph
    intervals = read_bedgraph(path)
    if not intervals:
        raise ReproError(f"no intervals in {path!r}")
    chrom = intervals[0].chrom
    span = max(iv.end for iv in intervals if iv.chrom == chrom)
    out = np.zeros(span)
    for iv in intervals:
        if iv.chrom == chrom:
            out[iv.start:iv.end] = iv.value
    return out


def _cmd_nlmeans(args: argparse.Namespace) -> int:
    from .stats import nlmeans_parallel
    values = _load_series(args.input)
    denoised, metrics = nlmeans_parallel(values, args.nprocs,
                                         args.search_radius,
                                         args.half_patch, args.sigma)
    np.save(args.output, denoised)
    busy = max(m.compute_seconds for m in metrics)
    print(f"denoised {len(values)} bins with r={args.search_radius}, "
          f"l={args.half_patch}, sigma={args.sigma} on {args.nprocs} "
          f"ranks (slowest rank {busy:.2f}s) -> {args.output}")
    return 0


def _cmd_fdr(args: argparse.Namespace) -> int:
    from .simdata import build_simulations
    from .stats import fdr_parallel
    hist = _load_series(args.histogram)
    if args.simulations:
        sims = np.load(args.simulations)
    else:
        sims = build_simulations(hist, args.n_simulations, seed=args.seed)
    result, _ = fdr_parallel(hist, sims, args.threshold, args.nprocs)
    print(f"FDR(p_t={args.threshold}) = {result.fdr:.6f} "
          f"(numerator {result.numerator:.2f}, "
          f"denominator {result.denominator:.0f}, "
          f"B={sims.shape[0]}, M={sims.shape[1]})")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    import tempfile

    from .core.sort import parallel_sort_sam, sort_bam, sort_sam
    lowered = args.input.lower()
    if lowered.endswith(".bam"):
        result = sort_bam(args.input, args.output, args.chunk_records,
                          args.work_dir)
        print(f"sorted {result.records} records ({result.runs} spill "
              f"runs, {result.metrics.total_seconds:.2f}s) -> "
              f"{result.output}")
    elif args.nprocs > 1:
        work = args.work_dir or tempfile.mkdtemp(prefix="repro-sort-")
        result, rank_metrics = parallel_sort_sam(
            args.input, args.output, args.nprocs, work)
        print(f"sorted {result.records} records with {args.nprocs} "
              f"run-generation ranks -> {result.output}")
    else:
        result = sort_sam(args.input, args.output, args.chunk_records,
                          args.work_dir)
        print(f"sorted {result.records} records ({result.runs} spill "
              f"runs, {result.metrics.total_seconds:.2f}s) -> "
              f"{result.output}")
    return 0


def _cmd_flagstat(args: argparse.Namespace) -> int:
    from .tools import flagstat, flagstat_parallel
    if args.nprocs > 1 and args.input.lower().endswith(".sam"):
        stats, _ = flagstat_parallel(args.input, args.nprocs)
    else:
        stats = flagstat(args.input)
    print(stats.format_report())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .tools import validate_file
    report = validate_file(args.input, check_mates=not args.no_mates)
    print(report.format_report())
    return 0 if report.ok else 1


def _cmd_peaks(args: argparse.Namespace) -> int:
    from .simdata import build_simulations
    from .stats import call_peaks
    hist = _load_series(args.histogram)
    if args.simulations:
        sims = np.load(args.simulations)
    else:
        sims = build_simulations(hist, args.n_simulations,
                                 seed=args.seed)
    result = call_peaks(hist, sims, target_fdr=args.target_fdr,
                        denoise=not args.no_denoise,
                        search_radius=args.search_radius,
                        half_patch=args.half_patch,
                        nprocs=args.nprocs, min_width=args.min_width,
                        merge_gap=args.merge_gap)
    print(f"selected p_t={result.threshold} "
          f"(FDR {result.fdr.fdr:.4f}, "
          f"{result.fdr.denominator:.0f} candidate bins)")
    print(f"{result.n_peaks} enriched regions:")
    for peak in result.peaks[:args.limit]:
        print(f"  bins [{peak.start}, {peak.end})  "
              f"max={peak.max_value:.1f} mean={peak.mean_value:.1f}")
    if result.n_peaks > args.limit:
        print(f"  ... and {result.n_peaks - args.limit} more")
    if args.bed:
        from .formats.bed import BedInterval, write_bed
        intervals = [
            BedInterval(args.chrom, p.start * args.bin_size,
                        p.end * args.bin_size, f"peak{i}",
                        min(1000, p.max_value))
            for i, p in enumerate(result.peaks)]
        write_bed(args.bed, intervals)
        print(f"wrote {len(intervals)} BED features to {args.bed}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ConversionService, GatewayConfig, \
        ServiceDaemon, protocol
    if not args.socket and not args.listen:
        print("serve needs --socket PATH and/or --listen HOST:PORT",
              file=sys.stderr)
        return 2
    listen = protocol.parse_address(args.listen) if args.listen \
        else None
    config = GatewayConfig(max_pending_jobs=args.max_pending_jobs)
    cache_verify: object = args.cache_verify
    if cache_verify not in ("always", "never"):
        try:
            cache_verify = float(cache_verify)
        except ValueError:
            # Leave the raw string; ArtifactCache._parse_verify
            # reports it as a friendly ServiceError.
            pass
    service = ConversionService(args.work_dir, workers=args.workers,
                                cache_dir=args.cache_dir,
                                cache_max_bytes=args.cache_max_bytes,
                                shards_per_rank=args.shards,
                                journal_path=args.journal,
                                journal_fsync=args.journal_fsync,
                                cache_verify=cache_verify,
                                cost_model_path=args.cost_model)
    if args.journal:
        recovered = int(service.metrics.gauge("journal_recovered_jobs"))
        print(f"journal {args.journal}: {recovered} jobs recovered",
              flush=True)
    daemon = ServiceDaemon(service, socket_path=args.socket,
                           listen=listen, config=config)
    try:
        daemon.start()
        endpoints = []
        if args.socket:
            endpoints.append(str(args.socket))
        if daemon.tcp_address is not None:
            endpoints.append("tcp://%s:%d" % daemon.tcp_address)
        print(f"repro service listening on {' and '.join(endpoints)} "
              f"({args.workers} workers, cache at "
              f"{service.cache.cache_dir})", flush=True)
        daemon.wait()
    except KeyboardInterrupt:
        print("shutting down")
        daemon.stop()
    finally:
        from .runtime.executor import reset_shared_executor
        reset_shared_executor()  # don't leave warm workers behind
    return 0


def _service_client(args: argparse.Namespace):
    """Connect a ServiceClient from ``--socket``/``--connect`` flags.

    Retries the connect with bounded backoff so racing a just-spawned
    ``repro serve`` (listener not bound yet) does not fail hard.
    """
    from .service import ServiceClient, protocol
    if getattr(args, "connect", None):
        address: object = protocol.parse_address(args.connect)
    else:
        address = args.socket
    return ServiceClient(address, connect_retries=3,
                         connect_backoff=0.1)


def _format_job_line(job: dict) -> str:
    error = f"  error: {job['error']}" if job.get("error") else ""
    return (f"{job['job_id']}  {job['kind']:<10} {job['state']:<9} "
            f"attempts={job['attempts']}{error}")


def _cmd_submit(args: argparse.Namespace) -> int:
    params = {"input": args.input, "target": args.target,
              "out_dir": args.out_dir, "nprocs": args.nprocs,
              "executor": args.executor}
    if args.shards != 1:
        params["shards"] = args.shards
    if args.batch_size is not None:
        params["batch_size"] = args.batch_size
    if args.filter:
        params["filter"] = args.filter
    if args.store_format != "bamx":
        params["store_format"] = args.store_format
    kind = "convert"
    if args.region:
        kind = "region"
        params["region"] = args.region
        params["mode"] = args.mode
    with _service_client(args) as client:
        job = client.submit(kind, params, priority=args.priority,
                            timeout=args.timeout,
                            max_retries=args.max_retries)
        print(f"submitted {job['job_id']} ({kind}, "
              f"priority {job['priority']})")
        if not args.wait:
            return 0
        job = client.wait(job["job_id"])
    print(_format_job_line(job))
    if job["state"] != "done":
        return 1
    result = job.get("result") or {}
    if "records" in result:
        cache = result.get("cache")
        suffix = f" (preprocessing cache {cache})" if cache else ""
        print(f"converted {result['records']} records -> "
              f"{result['emitted']} {result['target']} objects in "
              f"{len(result['outputs'])} part files "
              f"({result['wall_seconds']:.2f}s){suffix}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .runtime.metrics import format_metrics_snapshot
    with _service_client(args) as client:
        if args.trace:
            from .runtime.tracing import format_tree, spans_from_dicts
            span_dicts = client.trace(args.trace)
            if not span_dicts:
                print(f"no trace recorded for {args.trace}")
                return 0
            print(format_tree(spans_from_dicts(span_dicts)))
            return 0
        if args.metrics:
            print(format_metrics_snapshot(client.metrics()))
            return 0
        jobs = client.status(args.job)
    if isinstance(jobs, dict):
        jobs = [jobs]
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(_format_job_line(job))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    with _service_client(args) as client:
        cancelled = client.cancel(args.job)
    if cancelled:
        print(f"cancelled {args.job}")
        return 0
    print(f"{args.job} had already finished")
    return 1


def _cmd_tune(args: argparse.Namespace) -> int:
    from .runtime.autotune import CostModel, resolve_model_path
    path = resolve_model_path(args.cost_model)
    model = CostModel(path)
    if args.action == "reset":
        n = len(model)
        model.reset()
        print(f"cleared {n} cost-model keys ({path})")
        return 0
    if model.load_error:
        print(f"warning: damaged cost model treated as empty: "
              f"{model.load_error}", file=sys.stderr)
    snap = model.snapshot()
    if not snap:
        print(f"cost model {path}: empty (cold); auto runs fall back "
              f"to the static defaults until it warms up")
        return 0
    print(f"cost model {path}: {len(snap)} keys")
    print(f"{'key':<36} {'rate s/unit':>12} {'hottest':>12} "
          f"{'hot%':>5} {'obs':>4}")
    for key in sorted(snap):
        entry = snap[key]
        print(f"{key:<36} {entry['rate']:>12.3e} "
              f"{entry['rate_max']:>12.3e} "
              f"{100 * entry['hot_frac']:>4.0f}% "
              f"{entry['count']:>4d}")
    return 0


def _cmd_formats(_args: argparse.Namespace) -> int:
    from .formats.registry import list_formats
    for info in list_formats():
        kind = "binary" if info.binary else "text"
        exts = ", ".join(info.extensions)
        print(f"{info.name:<10} {kind:<7} {exts:<20} {info.description}")
    return 0


def _add_service_endpoint_arguments(p: argparse.ArgumentParser) -> None:
    """--socket/--connect pair shared by the service client verbs."""
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", default=None,
                       help="service unix socket path")
    group.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="service TCP address")


def _add_pipeline_arguments(p: argparse.ArgumentParser) -> None:
    """Batched-pipeline knobs shared by the conversion commands."""
    from .formats.batch import DEFAULT_BATCH_SIZE, PIPELINES
    p.add_argument("--batch-size", type=_batch_size_value,
                   default=DEFAULT_BATCH_SIZE,
                   help="records per batch through the chunk-level "
                        f"codecs (default {DEFAULT_BATCH_SIZE}), or "
                        f"'auto' to let the cost model choose")
    p.add_argument("--pipeline", default="batch", choices=PIPELINES,
                   help="'batch' (default) uses the chunk-level codecs "
                        "and per-target fastpaths; 'record' keeps the "
                        "record-at-a-time path (outputs are "
                        "byte-identical)")
    _add_shards_argument(p)


def _add_store_format_argument(p: argparse.ArgumentParser) -> None:
    """The preprocessing record-store format knob."""
    from .formats.store import STORE_FORMATS
    p.add_argument("--store-format", default="bamx",
                   choices=STORE_FORMATS,
                   help="record store written by preprocessing: 'bamx' "
                        "(default; row-major fixed records) or 'bamc' "
                        "(slab-columnar, converted through vectorized "
                        "kernels; outputs are byte-identical)")


def _add_shards_argument(p: argparse.ArgumentParser) -> None:
    """The dynamic over-decomposition knob."""
    p.add_argument("--shards", type=_shards_value, default=1,
                   help="shards per rank for dynamic load balancing on "
                        "the shared worker pool; 1 (default) keeps the "
                        "paper-faithful static one-task-per-rank "
                        "schedule, 'auto' lets the cost model pick "
                        "(outputs are byte-identical)")


def _add_cost_model_argument(p: argparse.ArgumentParser) -> None:
    """The persistent cost-model path used by 'auto' knobs."""
    p.add_argument("--cost-model", default=None, metavar="PATH",
                   help="persistent cost-model profile backing the "
                        "'auto' knobs and straggler re-splitting "
                        "(default: $REPRO_COST_MODEL, then "
                        "~/.cache/repro/cost-model.json)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel NGS format conversion and statistics "
                    "(IPDPSW 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate a synthetic SAM/BAM "
                                        "dataset")
    p.add_argument("output", help="output path (.sam or .bam)")
    p.add_argument("--templates", type=int, default=1000,
                   help="number of read pairs (default 1000)")
    p.add_argument("--chromosomes", default="chr1:60000,chr2:40000",
                   help="comma-separated name:length list")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--unsorted", action="store_true",
                   help="keep template order instead of coordinate sort")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("convert", help="convert SAM/BAM/BAMX to another "
                                       "format in parallel")
    p.add_argument("input", help=".sam, .bam or .bamx input")
    p.add_argument("--target", required=True,
                   help="target format (see 'repro formats')")
    p.add_argument("--out-dir", required=True)
    p.add_argument("--work-dir", default=None,
                   help="where BAM preprocessing writes BAMX/BAIX")
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--executor", default="simulate",
                   choices=("simulate", "thread", "process"))
    p.add_argument("--filter", default=None,
                   help="record filter, e.g. 'q=30,F=0x400,primary'")
    p.add_argument("--bamx", default=None,
                   help="reuse this BAMX instead of preprocessing "
                        "(BAM input only)")
    p.add_argument("--baix", default=None,
                   help="index for --bamx (default <bamx>.baix)")
    _add_store_format_argument(p)
    _add_pipeline_arguments(p)
    _add_cost_model_argument(p)
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser("preprocess", help="BAMX/BAIX preprocessing only")
    p.add_argument("input", help=".sam (parallel) or .bam (sequential)")
    p.add_argument("--work-dir", required=True)
    p.add_argument("--nprocs", type=int, default=1,
                   help="preprocessing ranks (SAM input only)")
    p.add_argument("--compress", action="store_true",
                   help="write BGZF-compressed BAMZ instead of BAMX "
                        "(BAM input only)")
    p.add_argument("--executor", default="simulate",
                   choices=("simulate", "thread", "process"))
    _add_store_format_argument(p)
    _add_shards_argument(p)
    _add_cost_model_argument(p)
    p.set_defaults(fn=_cmd_preprocess)

    p = sub.add_parser("sort", help="coordinate-sort a SAM/BAM file "
                                    "(external merge sort)")
    p.add_argument("input", help=".sam or .bam input")
    p.add_argument("--output", required=True,
                   help="output path (same format as input)")
    p.add_argument("--chunk-records", type=int, default=250_000,
                   help="records per in-memory run")
    p.add_argument("--nprocs", type=int, default=1,
                   help="parallel run-generation ranks (SAM input only)")
    p.add_argument("--work-dir", default=None,
                   help="where intermediate runs are written")
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser("flagstat", help="flag statistics "
                                        "(samtools flagstat)")
    p.add_argument("input", help=".sam, .bam, .bamx, .bamz or .bamc "
                                 "input (columnar stores use the "
                                 "vectorized kernel)")
    p.add_argument("--nprocs", type=int, default=1,
                   help="parallel counting ranks (SAM input only)")
    p.set_defaults(fn=_cmd_flagstat)

    p = sub.add_parser("validate", help="structural validation "
                                        "(Picard ValidateSamFile)")
    p.add_argument("input", help=".sam or .bam input")
    p.add_argument("--no-mates", action="store_true",
                   help="skip mate cross-checks")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("region", help="partial conversion of one "
                                      "chromosome region")
    p.add_argument("bamx", help="preprocessed .bamx file")
    p.add_argument("--baix", dest="baix", default=None,
                   help="index path (default <bamx>.baix)")
    p.add_argument("--region", required=True,
                   help="samtools-style region, e.g. chr1:1000-2000")
    p.add_argument("--target", required=True)
    p.add_argument("--out-dir", required=True)
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--executor", default="simulate",
                   choices=("simulate", "thread", "process"))
    p.add_argument("--mode", default="start",
                   choices=("start", "overlap"),
                   help="select records starting in (paper semantics) "
                        "or overlapping the region")
    p.add_argument("--filter", default=None,
                   help="record filter, e.g. 'q=30,F=0x400,primary'")
    _add_pipeline_arguments(p)
    _add_cost_model_argument(p)
    p.set_defaults(fn=_cmd_region)

    p = sub.add_parser("histogram", help="binned coverage histogram from "
                                         "a SAM file or record store")
    p.add_argument("input", help=".sam, .bamx, .bamz or .bamc input "
                                 "(columnar stores use the vectorized "
                                 "kernel)")
    p.add_argument("--bin-size", type=int, default=25)
    p.add_argument("--output", required=True, help=".bedgraph output")
    p.add_argument("--npy", default=None,
                   help="also save the dense array as .npy")
    p.set_defaults(fn=_cmd_histogram)

    p = sub.add_parser("nlmeans", help="denoise a histogram with parallel "
                                       "NL-means")
    p.add_argument("input", help=".npy or .bedgraph histogram")
    p.add_argument("--output", required=True, help=".npy output")
    p.add_argument("--search-radius", "-r", type=int, default=20)
    p.add_argument("--half-patch", "-l", type=int, default=15)
    p.add_argument("--sigma", type=float, default=10.0)
    p.add_argument("--nprocs", type=int, default=1)
    p.set_defaults(fn=_cmd_nlmeans)

    p = sub.add_parser("fdr", help="false discovery rate for a peak "
                                   "threshold")
    p.add_argument("histogram", help=".npy or .bedgraph histogram")
    p.add_argument("--simulations", default=None,
                   help=".npy (B, M) simulation array; generated by "
                        "permutation when omitted")
    p.add_argument("--n-simulations", type=int, default=80)
    p.add_argument("--threshold", "-t", type=float, required=True,
                   help="candidate threshold p_t")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nprocs", type=int, default=1)
    p.set_defaults(fn=_cmd_fdr)

    p = sub.add_parser("peaks", help="FDR-controlled peak calling on a "
                                     "histogram")
    p.add_argument("histogram", help=".npy or .bedgraph histogram")
    p.add_argument("--simulations", default=None,
                   help=".npy (B, M) simulation array")
    p.add_argument("--n-simulations", type=int, default=60)
    p.add_argument("--target-fdr", type=float, default=0.05)
    p.add_argument("--no-denoise", action="store_true")
    p.add_argument("--search-radius", "-r", type=int, default=20)
    p.add_argument("--half-patch", "-l", type=int, default=15)
    p.add_argument("--min-width", type=int, default=1)
    p.add_argument("--merge-gap", type=int, default=0)
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=20,
                   help="max regions printed")
    p.add_argument("--bed", default=None,
                   help="also write regions as BED to this path")
    p.add_argument("--chrom", default="chr1",
                   help="chromosome name used in the BED output")
    p.add_argument("--bin-size", type=int, default=25,
                   help="bin size for BED coordinates")
    p.set_defaults(fn=_cmd_peaks)

    p = sub.add_parser("serve", help="run the conversion job service "
                                     "daemon")
    p.add_argument("--socket", default=None,
                   help="unix socket path to listen on")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="also (or only) listen on TCP; port 0 binds "
                        "an ephemeral port and reports it")
    p.add_argument("--work-dir", required=True,
                   help="service state root (cache lives below it)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker threads draining the job queue")
    p.add_argument("--cache-dir", default=None,
                   help="artifact cache dir (default <work-dir>/cache)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="LRU size cap for the artifact cache")
    p.add_argument("--max-pending-jobs", type=int, default=1024,
                   help="admission-control cap on queued jobs; "
                        "submits beyond it get explicit 'overloaded' "
                        "errors (default 1024)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="write-ahead job journal; an existing journal "
                        "is replayed on startup, re-queueing jobs the "
                        "previous daemon lost to a crash")
    p.add_argument("--journal-fsync", default="interval",
                   choices=("always", "interval", "never"),
                   help="journal durability: fsync every append, "
                        "at a bounded interval (default), or never")
    p.add_argument("--cache-verify", default="always",
                   metavar="POLICY",
                   help="artifact digest verification on cache fetch: "
                        "'always' (default), 'never', or a sample "
                        "probability like 0.1")
    _add_shards_argument(p)
    _add_cost_model_argument(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("submit", help="submit a conversion job to a "
                                      "running service")
    p.add_argument("input", help=".sam, .bam, .bamx, .bamz or .bamc "
                                 "input")
    _add_service_endpoint_arguments(p)
    p.add_argument("--target", required=True,
                   help="target format (see 'repro formats')")
    p.add_argument("--out-dir", required=True)
    p.add_argument("--region", default=None,
                   help="submit a partial conversion of this region")
    p.add_argument("--mode", default="start",
                   choices=("start", "overlap"),
                   help="region selection semantics")
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--executor", default="simulate",
                   choices=("simulate", "thread", "process"))
    p.add_argument("--filter", default=None,
                   help="record filter, e.g. 'q=30,F=0x400,primary'")
    _add_store_format_argument(p)
    _add_shards_argument(p)
    p.add_argument("--batch-size", type=_batch_size_value, default=None,
                   help="records per batch, or 'auto' (default: the "
                        "service's own default)")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (default 0)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-attempt wall-clock limit in seconds")
    p.add_argument("--max-retries", type=int, default=0)
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status", help="job status / service metrics of "
                                      "a running service")
    p.add_argument("job", nargs="?", default=None,
                   help="job id (all jobs when omitted)")
    _add_service_endpoint_arguments(p)
    p.add_argument("--metrics", action="store_true",
                   help="print the service metrics snapshot instead")
    p.add_argument("--trace", metavar="JOB", default=None,
                   help="print the span tree recorded for this job")
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("cancel", help="cancel a queued or running "
                                      "service job")
    p.add_argument("job", help="job id")
    _add_service_endpoint_arguments(p)
    p.set_defaults(fn=_cmd_cancel)

    p = sub.add_parser("tune", help="inspect or reset the persistent "
                                    "cost model behind 'auto' knobs")
    p.add_argument("action", choices=("show", "reset"),
                   help="'show' prints every learned key; 'reset' "
                        "forgets them and removes the model file")
    _add_cost_model_argument(p)
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("formats", help="list supported formats")
    p.set_defaults(fn=_cmd_formats)

    # Every command can dump a trace of its run; "status" is excluded
    # because its --trace flag queries a *service job's* trace instead.
    for name, command_parser in sub.choices.items():
        if name != "status":
            command_parser.add_argument(
                "--trace", metavar="FILE", default=None,
                help="write a span trace of this run (.json = Chrome "
                     "trace format, anything else = JSON lines); "
                     "REPRO_TRACE=FILE does the same")
    return parser


@contextlib.contextmanager
def _command_tracing(args: argparse.Namespace):
    """Install a tracer around one CLI command when requested.

    The trace path comes from the subcommand's ``--trace FILE`` flag,
    falling back to the ``REPRO_TRACE`` environment variable; with
    neither set, the disabled default tracer stays installed and the
    instrumented code paths cost one predicate per span site.
    """
    path = getattr(args, "trace", None) or os.environ.get("REPRO_TRACE")
    if not path or args.command == "status":
        yield
        return
    from .runtime.tracing import Tracer, install, write_trace
    tracer = Tracer(enabled=True)
    prev = install(tracer)
    try:
        with tracer.span(f"cli.{args.command}", "cli"):
            yield
    finally:
        install(prev)
        spans = tracer.spans()
        write_trace(spans, path)
        print(f"trace: {len(spans)} spans -> {path}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _command_tracing(args):
            return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
