"""Sequential baseline converters (the Picard stand-in of Table I)."""

from .picard_like import BaselineResult, bam_to_fastq, bam_to_sam, \
    sam_to_bam, sam_to_fastq

__all__ = ["BaselineResult", "sam_to_fastq", "bam_to_fastq", "bam_to_sam",
           "sam_to_bam"]
