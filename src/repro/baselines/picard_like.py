"""Picard-like sequential converters: the Table I comparator.

Picard is the Java toolkit the paper compares sequential performance
against.  This module plays its role: straightforward, single-core,
single-pass SAM/BAM converters written directly against the format
codecs, with none of the parallel runtime's machinery (no partitioning,
no rank metrics, plain buffered streams).  Semantics follow the Picard
tools they mirror:

* :func:`sam_to_fastq` / :func:`bam_to_fastq` — Picard ``SamToFastq``:
  primary records only, sequences restored to instrument orientation;
* :func:`bam_to_sam` — Picard ``SamFormatConverter`` to text;
* :func:`sam_to_bam` — the reverse direction.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..formats.bam import BamReader, BamWriter
from ..formats.flags import is_primary
from ..formats.record import AlignmentRecord
from ..formats.sam import SamReader, SamWriter


@dataclass(slots=True)
class BaselineResult:
    """Outcome of one baseline conversion."""

    records: int
    emitted: int
    wall_seconds: float
    output: str


def _fastq_entry(record: AlignmentRecord) -> str | None:
    if not is_primary(record.flag):
        return None
    seq = record.original_sequence()
    if seq == "*":
        return None
    qual = record.original_qualities()
    if qual == "*":
        qual = "!" * len(seq)
    mate = record.mate_number
    suffix = f"/{mate}" if mate else ""
    return f"@{record.qname}{suffix}\n{seq}\n+\n{qual}\n"


def sam_to_fastq(sam_path: str | os.PathLike[str],
                 fastq_path: str | os.PathLike[str]) -> BaselineResult:
    """Sequential SAM -> FASTQ (Picard SamToFastq semantics)."""
    t0 = time.perf_counter()
    records = 0
    emitted = 0
    with SamReader(sam_path) as reader, \
            open(fastq_path, "w", encoding="ascii") as out:
        for record in reader:
            records += 1
            entry = _fastq_entry(record)
            if entry is not None:
                out.write(entry)
                emitted += 1
    return BaselineResult(records, emitted, time.perf_counter() - t0,
                          os.fspath(fastq_path))


def bam_to_fastq(bam_path: str | os.PathLike[str],
                 fastq_path: str | os.PathLike[str]) -> BaselineResult:
    """Sequential BAM -> FASTQ."""
    t0 = time.perf_counter()
    records = 0
    emitted = 0
    with BamReader(bam_path) as reader, \
            open(fastq_path, "w", encoding="ascii") as out:
        for record in reader:
            records += 1
            entry = _fastq_entry(record)
            if entry is not None:
                out.write(entry)
                emitted += 1
    return BaselineResult(records, emitted, time.perf_counter() - t0,
                          os.fspath(fastq_path))


def bam_to_sam(bam_path: str | os.PathLike[str],
               sam_path: str | os.PathLike[str]) -> BaselineResult:
    """Sequential BAM -> SAM (Picard SamFormatConverter)."""
    t0 = time.perf_counter()
    records = 0
    with BamReader(bam_path) as reader:
        with SamWriter(sam_path, reader.header) as writer:
            for record in reader:
                writer.write(record)
                records += 1
    return BaselineResult(records, records, time.perf_counter() - t0,
                          os.fspath(sam_path))


def sam_to_bam(sam_path: str | os.PathLike[str],
               bam_path: str | os.PathLike[str],
               level: int = 6) -> BaselineResult:
    """Sequential SAM -> BAM."""
    t0 = time.perf_counter()
    records = 0
    with SamReader(sam_path) as reader:
        with BamWriter(bam_path, reader.header, level=level) as writer:
            for record in reader:
                writer.write(record)
                records += 1
    return BaselineResult(records, records, time.perf_counter() - t0,
                          os.fspath(bam_path))
