"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class at pipeline
boundaries.  Subclasses distinguish the layer that failed: format codecs,
indexing, the parallel runtime, or conversion orchestration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormatError(ReproError):
    """A file or record violates its format specification.

    Parameters
    ----------
    message:
        Human-readable description of the violation.
    source:
        Optional name of the offending file or stream.
    lineno:
        Optional 1-based line (text formats) or record index (binary
        formats) at which the violation was detected.
    """

    def __init__(self, message: str, *, source: str | None = None,
                 lineno: int | None = None) -> None:
        self.source = source
        self.lineno = lineno
        prefix = ""
        if source is not None:
            prefix += f"{source}: "
        if lineno is not None:
            prefix += f"record {lineno}: "
        super().__init__(prefix + message)


class SamFormatError(FormatError):
    """A SAM text line or header violates the SAM specification."""


class BamFormatError(FormatError):
    """A BAM binary stream violates the BAM specification."""


class BgzfError(FormatError):
    """A BGZF block stream is malformed or truncated."""


class BamxFormatError(FormatError):
    """A BAMX file violates its fixed-record layout."""


class IndexError_(ReproError):
    """An index (BAI or BAIX) is missing, stale, or inconsistent."""


class RegionError(ReproError):
    """A genomic region string or interval is invalid for the dataset."""


class RuntimeLayerError(ReproError):
    """The parallel runtime was misused (bad rank, size, or topology)."""


class PartitionError(RuntimeLayerError):
    """Byte-range or record-range partitioning produced an invalid split."""


class ConversionError(ReproError):
    """Format conversion could not be completed."""


class CapacityError(BamxFormatError):
    """A record exceeds the fixed field capacities of a BAMX layout."""


class FaultInjectedError(ReproError):
    """An armed fault-injection point fired (see
    :mod:`repro.runtime.faults`).  Only ever raised under an explicit
    ``REPRO_FAULTS`` configuration — production code never sees it."""


class ServiceError(ReproError):
    """The conversion job service was misused or failed internally."""


class CacheIntegrityError(ServiceError):
    """A cache entry failed digest verification.  The offending entry
    has already been quarantined when this is raised; callers can
    retry and will rebuild from the source input."""


class JournalError(ServiceError):
    """The job journal could not be written or replayed."""


class JobNotFoundError(ServiceError):
    """A job id does not name any job known to the service."""


class ProtocolError(ServiceError):
    """A client/daemon line-JSON message is malformed."""


class ServiceOverloadedError(ServiceError):
    """The gateway refused an operation because the service is at its
    admission limit (or draining for shutdown).  Explicit backpressure:
    callers should retry later instead of queueing unboundedly."""
