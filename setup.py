"""Legacy setup shim.

This environment has no network and no ``wheel`` package, so PEP-660
editable installs are unavailable; keeping a setup.py lets
``pip install -e .`` fall back to the legacy develop-mode path.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
