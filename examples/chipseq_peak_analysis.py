#!/usr/bin/env python3
"""ChIP-seq-style peak analysis: the paper's §IV statistics workflow.

Follows Han et al. (2012), the pipeline the paper parallelizes:

1. build a binned coverage histogram with known enriched regions,
2. denoise it with NL-means (parallel, halo replication),
3. sweep candidate thresholds p_t and compute FDR(p_t) with the
   parallel Algorithm-2 implementation,
4. pick the loosest threshold with FDR below a target and report the
   recovered peak regions.

Run:

    python examples/chipseq_peak_analysis.py
"""

import numpy as np

from repro.simdata import build_simulations
from repro.stats import fdr_parallel, nlmeans_parallel

RNG = np.random.default_rng(1234)
N_BINS = 8_000
BIN_SIZE = 25
TARGET_FDR = 0.05


def make_signal() -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Noisy background plus planted enrichment peaks."""
    signal = RNG.poisson(5.0, N_BINS).astype(float)
    truth = []
    for _ in range(12):
        center = int(RNG.integers(100, N_BINS - 100))
        width = int(RNG.integers(8, 30))
        height = float(RNG.uniform(25, 60))
        x = np.arange(N_BINS)
        signal += height * np.exp(-0.5 * ((x - center) / width) ** 2)
        truth.append((center - 2 * width, center + 2 * width))
    return signal, truth


def to_regions(mask: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous True runs as half-open bin ranges."""
    regions = []
    start = None
    for i, hit in enumerate(mask):
        if hit and start is None:
            start = i
        elif not hit and start is not None:
            regions.append((start, i))
            start = None
    if start is not None:
        regions.append((start, len(mask)))
    return regions


def main() -> None:
    signal, truth = make_signal()
    print(f"histogram: {N_BINS} bins x {BIN_SIZE} bp, "
          f"{len(truth)} planted peaks")

    # 1. Denoise (r=20, l=15, sigma=10 — the paper's parameters).
    denoised, metrics = nlmeans_parallel(signal, nprocs=8,
                                         search_radius=20, half_patch=15,
                                         sigma=10.0)
    slowest = max(m.compute_seconds for m in metrics)
    print(f"NL-means on 8 ranks (slowest rank {slowest:.2f}s)")

    # 2. Random simulations (positional permutation null).
    sims = build_simulations(denoised, n_simulations=60, seed=99)

    # 3. FDR sweep: pick the loosest p_t with FDR <= target.  Lower p_t
    #    = stricter selection (fewer simulations may exceed a bin).
    chosen = None
    print(f"\n{'p_t':>6} {'FDR':>9} {'bins kept':>10}")
    for p_t in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0):
        result, _ = fdr_parallel(denoised, sims, p_t, nprocs=8)
        print(f"{p_t:>6.1f} {result.fdr:>9.4f} "
              f"{result.denominator:>10.0f}")
        if result.fdr <= TARGET_FDR:
            chosen = (p_t, result)
    if chosen is None:
        print("no threshold meets the FDR target; keeping strictest")
        chosen = (0.0, fdr_parallel(denoised, sims, 0.0, nprocs=8)[0])

    p_t, result = chosen
    print(f"\nselected p_t = {p_t} (FDR {result.fdr:.4f})")

    # 4. Call peaks: bins whose empirical p_i passes the threshold.
    p_values = (denoised[None, :] <= sims).sum(axis=0)
    mask = p_values <= p_t
    called = to_regions(mask)
    recovered = sum(
        1 for lo, hi in truth
        if any(c_lo < hi and c_hi > lo for c_lo, c_hi in called))
    print(f"called {len(called)} regions; recovered {recovered}/"
          f"{len(truth)} planted peaks")
    for lo, hi in called[:10]:
        print(f"  peak @ bins [{lo}, {hi}) = bp "
              f"[{lo * BIN_SIZE}, {hi * BIN_SIZE})")


if __name__ == "__main__":
    main()
