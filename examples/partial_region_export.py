#!/usr/bin/env python3
"""Partial conversion: export only a chromosome region (§III-B).

The BAIX index stores every alignment's starting position sorted by
coordinate; a region query is two binary searches that select a
contiguous index subrange, which is then split evenly across ranks for
random-access conversion.  Blindly converting the full dataset is never
needed.

Run:

    python examples/partial_region_export.py
"""

import os
import tempfile
import time

from repro.core import BamConverter
from repro.core.region import GenomicRegion
from repro.formats.bam import write_bam
from repro.formats.baix import BaixIndex
from repro.simdata import build_sam_dataset


def main() -> None:
    work = tempfile.mkdtemp(prefix="repro-region-")
    workload = build_sam_dataset(os.path.join(work, "s.sam"),
                                 n_templates=2_000,
                                 chromosomes=[("chr1", 120_000),
                                              ("chr2", 80_000)],
                                 seed=23)
    bam_path = os.path.join(work, "s.bam")
    write_bam(bam_path, workload.header, workload.records)

    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_path, work)
    index = BaixIndex.load(baix)
    print(f"indexed {len(index)} placed alignments\n")

    # Partial conversions over progressively larger chr1 windows.
    for spec in ("chr1:1-20000", "chr1:1-60000", "chr1", "chr2:30000-80000"):
        region = GenomicRegion.parse(spec, workload.header)
        t0 = time.perf_counter()
        result = converter.convert_region(bamx, baix, region, "sam",
                                          os.path.join(work, "out",
                                                       spec.replace(":", "_")),
                                          nprocs=4)
        elapsed = time.perf_counter() - t0
        print(f"{spec:<22} -> {result.records:>5} records on "
              f"{result.nprocs} ranks in {elapsed * 1e3:6.1f} ms")

    # Show that the index query alone is trivial (binary search).
    ref_id = workload.header.ref_id("chr1")
    t0 = time.perf_counter()
    lo, hi = index.locate(ref_id, 10_000, 50_000)
    micros = (time.perf_counter() - t0) * 1e6
    print(f"\nBAIX binary search for chr1:10001-50000: entries "
          f"[{lo}, {hi}) found in {micros:.0f} us")


if __name__ == "__main__":
    main()
