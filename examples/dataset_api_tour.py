#!/usr/bin/env python3
"""Tour of the high-level AlignmentDataset API.

One object from simulation to peaks: simulate, inspect, sort,
preprocess, convert (full / region / filtered), fetch, and run the
statistics workflow — each line delegating to the subsystem the other
examples show in detail.

Run:

    python examples/dataset_api_tour.py
"""

import os
import tempfile

from repro.core import AlignmentDataset, RecordFilter
from repro.simdata import build_simulations
from repro.stats import call_peaks


def main() -> None:
    work = tempfile.mkdtemp(prefix="repro-tour-")

    # Simulate an *unsorted* BAM, then sort it.
    raw = AlignmentDataset.simulate(
        os.path.join(work, "raw.bam"), n_templates=1_200,
        chromosomes=[("chr1", 100_000), ("chr2", 60_000)], seed=7,
        sort=False)
    ds = raw.sorted(os.path.join(work, "sorted.bam"))
    print(f"dataset: {ds.count()} records, "
          f"sort order {ds.header.sort_order!r}")

    # Inspection.
    print("\nflagstat:")
    for line in ds.flagstat().format_report().splitlines()[:5]:
        print(f"  {line}")
    report = ds.validate()
    print(f"validation: {'clean' if report.ok else 'ISSUES'} "
          f"({report.records_checked} records)")

    # Preprocess once, reuse the store for everything random-access.
    store = ds.preprocess(os.path.join(work, "store"))
    print(f"\npreprocessed store: {len(store)} records "
          f"({os.path.basename(store.store_path)})")

    result = store.convert("bed", os.path.join(work, "bed"), nprocs=4)
    print(f"full conversion: {result.emitted} BED features on "
          f"{result.nprocs} ranks")

    high_quality = RecordFilter(min_mapq=50, primary_only=True)
    filtered = store.convert_region(
        "chr1:20001-60000", "sam", os.path.join(work, "region"),
        nprocs=2, record_filter=high_quality)
    print(f"filtered region conversion: {filtered.records} records "
          f"(chr1:20001-60000, MAPQ>=50, primary)")

    spanning = store.fetch("chr1:30001-30100", mode="overlap")
    print(f"fetch(overlap): {len(spanning)} alignments across "
          f"chr1:30001-30100")

    # Statistics: histogram -> denoise -> FDR -> peaks, one call.
    histo = ds.histogram(bin_size=25)["chr1"]
    sims = build_simulations(histo, n_simulations=40, seed=5)
    peaks = call_peaks(histo, sims, target_fdr=0.10, nprocs=4,
                       min_width=2, merge_gap=2)
    print(f"\npeak calling: threshold p_t={peaks.threshold} "
          f"(FDR {peaks.fdr.fdr:.3f}), {peaks.n_peaks} regions")
    for peak in peaks.peaks[:5]:
        print(f"  chr1 bins [{peak.start}, {peak.end}) "
              f"max={peak.max_value:.1f}")

    print(f"\nall outputs under {work}")


if __name__ == "__main__":
    main()
