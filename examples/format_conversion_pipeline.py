#!/usr/bin/env python3
"""Format-conversion pipeline: all three converter instances.

Demonstrates the paper's §III on one dataset:

1. the SAM format converter (Algorithm 1 byte partitioning, no
   preprocessing) fanning a SAM file out to several target formats;
2. the BAM format converter: sequential preprocessing into BAMX/BAIX,
   then parallel conversion with equal-record partitioning;
3. the preprocessing-optimized SAM converter: *parallel* preprocessing
   into M BAMX files, then an M x N conversion phase;
4. a custom target plugin ("user program") registered at runtime.

Run:

    python examples/format_conversion_pipeline.py
"""

import os
import tempfile

from repro.core import BamConverter, PreprocSamConverter, SamConverter
from repro.core.targets import TargetFormat, register_target
from repro.formats.bam import write_bam
from repro.simdata import build_sam_dataset


def main() -> None:
    work = tempfile.mkdtemp(prefix="repro-convert-")
    sam_path = os.path.join(work, "sample.sam")
    workload = build_sam_dataset(sam_path, n_templates=1_500, seed=11)
    bam_path = os.path.join(work, "sample.bam")
    write_bam(bam_path, workload.header, workload.records)
    print(f"dataset: {len(workload.records)} records\n")

    # --- 1. SAM converter: one input, many targets, 4 ranks each -----
    converter = SamConverter()
    for target in ("bed", "bedgraph", "fasta", "fastq", "json", "yaml"):
        result = converter.convert(sam_path, target,
                                   os.path.join(work, target), nprocs=4)
        total = sum(os.path.getsize(p) for p in result.outputs)
        print(f"SAM -> {target:<8} {result.emitted:>5} objects, "
              f"{total:>9} bytes, {len(result.outputs)} parts")

    # --- 2. BAM converter: preprocess once, convert many times -------
    bam_converter = BamConverter()
    bamx, baix, pre = bam_converter.preprocess(bam_path,
                                               os.path.join(work, "pp"))
    print(f"\nBAM preprocessing: {pre.records} records -> "
          f"{os.path.basename(bamx)} + {os.path.basename(baix)} "
          f"({pre.total_seconds:.2f}s, sequential by necessity)")
    for target in ("sam", "bed"):
        result = bam_converter.convert(bamx, target,
                                       os.path.join(work, f"bam_{target}"),
                                       nprocs=4)
        print(f"BAMX -> {target:<7} {result.records:>5} records on "
              f"{result.nprocs} ranks")

    # --- 3. Preprocessing-optimized SAM converter (M x N) ------------
    opt = PreprocSamConverter()
    result = opt.convert_end_to_end(
        sam_path, "bed", os.path.join(work, "opt_work"),
        os.path.join(work, "opt_out"), preprocess_procs=3,
        convert_procs=2)
    print(f"\npreproc-optimized SAM -> BED: M=3 preprocessing ranks x "
          f"N=2 conversion ranks = {len(result.outputs)} part files")

    # --- 4. Extensibility: a user-written target plugin --------------
    class TsvTarget(TargetFormat):
        """Minimal positions-only TSV export."""

        name = "tsv"
        extension = ".tsv"

        def file_header(self, header):
            return "#qname\tchrom\tpos\tmapq\n"

        def emit(self, record):
            if not record.is_mapped:
                return None
            return (f"{record.qname}\t{record.rname}\t{record.pos + 1}"
                    f"\t{record.mapq}")

    register_target(TsvTarget)
    result = converter.convert(sam_path, "tsv",
                               os.path.join(work, "tsv"), nprocs=2)
    print(f"custom 'tsv' plugin: {result.emitted} rows "
          f"(user program = one emit() method)")
    print(f"\nall outputs under {work}")


if __name__ == "__main__":
    main()
