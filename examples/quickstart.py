#!/usr/bin/env python3
"""Quickstart: the whole pipeline in ~60 lines.

Simulates a small genome and read set, aligns the reads, writes SAM,
converts it to BED in parallel, and runs the statistics chain
(histogram -> NL-means -> FDR).  Run:

    python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.core import SamConverter
from repro.simdata import build_sam_dataset, build_simulations
from repro.stats import fdr_parallel, histogram_from_records, \
    nlmeans_parallel


def main() -> None:
    work = tempfile.mkdtemp(prefix="repro-quickstart-")
    sam_path = os.path.join(work, "sample.sam")

    # 1. Build a synthetic aligned dataset (genome -> reads -> aligner).
    workload = build_sam_dataset(sam_path, n_templates=1_000,
                                 chromosomes=[("chr1", 80_000),
                                              ("chr2", 40_000)],
                                 seed=42)
    mapped = sum(1 for r in workload.records if r.is_mapped)
    print(f"simulated {len(workload.records)} alignments "
          f"({mapped} mapped) -> {sam_path}")

    # 2. Convert SAM to BED on 4 ranks (Algorithm 1 partitioning).
    result = SamConverter().convert(sam_path, "bed",
                                    os.path.join(work, "bed"), nprocs=4)
    print(f"converted to BED: {result.emitted} features in "
          f"{len(result.outputs)} part files "
          f"({result.wall_seconds:.2f}s)")

    # 3. Coverage histogram (25 bp bins, as in the paper's §IV).
    histos = histogram_from_records(workload.records, workload.header,
                                    bin_size=25)
    signal = histos["chr1"]
    print(f"chr1 histogram: {len(signal)} bins, "
          f"mean coverage x bin {signal.mean():.1f}")

    # 4. NL-means denoising on 4 ranks (halo replication).  The patch
    # distance sums 2l+1 squared differences, so sigma is scaled to
    # sqrt(patch) times the per-bin noise level for meaningful weights.
    sigma = float(np.std(np.diff(signal))) * 31 ** 0.5 or 1.0
    denoised, _ = nlmeans_parallel(signal, nprocs=4, search_radius=20,
                                   half_patch=15, sigma=sigma)
    smoothness = np.abs(np.diff(denoised)).mean() \
        / max(np.abs(np.diff(signal)).mean(), 1e-9)
    print(f"NL-means denoised: neighbour roughness reduced to "
          f"{smoothness:.0%} of the raw signal")

    # 5. FDR for a candidate peak threshold (Algorithm 2, fused sums).
    sims = build_simulations(denoised, n_simulations=40, seed=7)
    fdr, _ = fdr_parallel(denoised, sims, p_t=4.0, nprocs=4)
    print(f"FDR(p_t=4.0) = {fdr.fdr:.4f} "
          f"({fdr.denominator:.0f} candidate bins)")

    print(f"\nall outputs under {work}")


if __name__ == "__main__":
    main()
