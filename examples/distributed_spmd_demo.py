#!/usr/bin/env python3
"""SPMD runtime demo: the paper's distributed protocols, rank by rank.

Everything else in this repo drives the converters through high-level
APIs; this example shows the underlying MPI-style layer directly:

* Algorithm 1 executed per-rank with real boundary exchange,
* NL-means as scatter -> compute -> gather,
* FDR Algorithm 2 with its explicit barrier and master reduction,

each run on both the thread backend and the process backend (true
multi-process parallelism).

Run:

    python examples/distributed_spmd_demo.py
"""

import os
import tempfile

import numpy as np

from repro.runtime.partition import partition_rank_spmd
from repro.runtime.spmd import run_spmd
from repro.simdata import build_histogram, build_sam_dataset, \
    build_simulations
from repro.stats import fdr_spmd, fdr_vectorized, nlmeans, nlmeans_spmd

N_RANKS = 4


def algorithm1_rank(comm, sam_path):
    """One rank of Algorithm 1: adjust boundaries, report ownership."""
    part = partition_rank_spmd(comm, sam_path)
    return (comm.rank, part.start, part.end)


def main() -> None:
    work = tempfile.mkdtemp(prefix="repro-spmd-")
    sam_path = os.path.join(work, "s.sam")
    build_sam_dataset(sam_path, n_templates=500, seed=3)

    for backend in ("thread", "process"):
        print(f"--- backend: {backend} ({N_RANKS} ranks) ---")

        # Algorithm 1 with real start/end message exchange.
        results = run_spmd(algorithm1_rank, N_RANKS, sam_path,
                           backend=backend)
        size = os.path.getsize(sam_path)
        assert results[0][1] == 0 and results[-1][2] == size
        for rank, start, end in results:
            print(f"  rank {rank}: bytes [{start:>8}, {end:>8}) "
                  f"({end - start} bytes)")

        # NL-means: scatter halo partitions, gather denoised cores.
        signal = build_histogram(3_000, seed=8)
        spmd_out = run_spmd(
            lambda comm: nlmeans_spmd(
                comm, signal if comm.rank == 0 else None,
                search_radius=10, half_patch=5, sigma=10.0),
            N_RANKS, backend=backend)[0]
        sequential = nlmeans(signal, 10, 5, 10.0)
        assert np.array_equal(spmd_out, sequential)
        print(f"  NL-means: {len(signal)} bins, SPMD output bitwise "
              f"equal to sequential")

        # FDR Algorithm 2: local fused sums, barrier, master reduce.
        sims = build_simulations(signal, 20, seed=9)
        fdr = run_spmd(
            lambda comm: fdr_spmd(
                comm, signal if comm.rank == 0 else None,
                sims if comm.rank == 0 else None, p_t=3.0),
            N_RANKS, backend=backend)[0]
        reference = fdr_vectorized(signal, sims, 3.0)
        assert fdr.fdr == reference.fdr
        print(f"  FDR(3.0) = {fdr.fdr:.4f}, identical to the "
              f"sequential value\n")


if __name__ == "__main__":
    main()
